// Tests for the multithreaded ParallelHeapEngine: batch delivery order,
// determinism across team sizes, overlap plumbing, the maintenance-team
// parallel path, think-lane quarantine, and the public cycle() surface.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "testing/oracle.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using Engine = ParallelHeapEngine<std::uint64_t>;

std::vector<std::uint64_t> random_items(std::size_t n, std::uint64_t seed,
                                        std::uint64_t bound = 1u << 30) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

TEST(Engine, DrainsSeededHeapInAscendingBatches) {
  EngineConfig cfg;
  cfg.node_capacity = 16;
  cfg.think_threads = 2;
  Engine eng(cfg);
  auto items = random_items(500, 1);
  eng.seed(items);

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  std::vector<std::uint64_t> batch_maxes;
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });

  EXPECT_EQ(rep.items_processed, items.size());
  EXPECT_EQ(seen.size(), items.size());
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);
  EXPECT_GT(rep.cycles, items.size() / 16 - 1);
  EXPECT_TRUE(eng.heap().empty());
}

TEST(Engine, BatchesAreGloballyOrdered) {
  // Batch b+1's smallest item must be >= batch b's largest: the engine hands
  // out the k globally smallest per cycle.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 1;
  Engine eng(cfg);
  auto items = random_items(400, 2);
  eng.seed(items);

  std::vector<std::uint64_t> batch_sorted;
  std::uint64_t prev_max = 0;
  bool first = true;
  bool ordered = true;
  eng.run([&](unsigned, std::span<const std::uint64_t> mine,
              std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
    // Single think thread: `mine` is the whole batch (round-robin of 1).
    batch_sorted.assign(mine.begin(), mine.end());
    std::sort(batch_sorted.begin(), batch_sorted.end());
    if (!first && !batch_sorted.empty() && batch_sorted.front() < prev_max) {
      ordered = false;
    }
    if (!batch_sorted.empty()) {
      prev_max = batch_sorted.back();
      first = false;
    }
  });
  EXPECT_TRUE(ordered);
}

// Hold-model think: every consumed item produces one new item with a larger
// key, value-deterministic so results are comparable across configurations.
void hold_think(std::span<const std::uint64_t> mine, std::vector<std::uint64_t>& out) {
  for (std::uint64_t v : mine) {
    out.push_back(v + 1 + (v * 2654435761u) % 1000);
  }
}

TEST(Engine, SteadyStateHoldModelStopsAtMaxItems) {
  EngineConfig cfg;
  cfg.node_capacity = 32;
  cfg.think_threads = 2;
  Engine eng(cfg);
  eng.seed(random_items(1000, 3, 1u << 20));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
        hold_think(mine, out);
      },
      /*max_items=*/5000);
  EXPECT_GE(rep.items_processed, 5000u);
  EXPECT_LT(rep.items_processed, 5000u + cfg.node_capacity);
  // Steady state: one insert per delete, heap stays ~1000.
  EXPECT_EQ(eng.heap().size(), 1000u);
}

TEST(Engine, DeterministicAcrossThinkTeamSizes) {
  // The multiset of processed items must be identical for 0, 1, 2, 4 think
  // threads (the hold think is value-deterministic).
  std::vector<std::vector<std::uint64_t>> results;
  for (unsigned threads : {0u, 1u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.node_capacity = 16;
    cfg.think_threads = threads;
    Engine eng(cfg);
    eng.seed(random_items(300, 4, 1u << 16));
    std::mutex mu;
    std::vector<std::uint64_t> seen;
    eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          {
            std::lock_guard lk(mu);
            seen.insert(seen.end(), mine.begin(), mine.end());
          }
          hold_think(mine, out);
        },
        /*max_items=*/3000);
    std::sort(seen.begin(), seen.end());
    results.push_back(std::move(seen));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "config " << i;
  }
}

TEST(Engine, MaintenanceTeamMatchesSerialMaintenance) {
  std::vector<std::vector<std::uint64_t>> results;
  for (unsigned mt : {0u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.node_capacity = 16;
    cfg.think_threads = 1;
    cfg.maintenance_threads = mt;
    Engine eng(cfg);
    eng.seed(random_items(400, 5, 1u << 18));
    std::vector<std::uint64_t> seen;
    eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          seen.insert(seen.end(), mine.begin(), mine.end());
          hold_think(mine, out);
        },
        /*max_items=*/4000);
    std::sort(seen.begin(), seen.end());
    results.push_back(std::move(seen));
  }
  EXPECT_EQ(results[1], results[0]);
  EXPECT_EQ(results[2], results[0]);
}

TEST(Engine, RoundRobinDealAcrossWorkers) {
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 4;
  Engine eng(cfg);
  std::vector<std::uint64_t> items(8);
  for (std::size_t i = 0; i < 8; ++i) items[i] = i;
  eng.seed(items);
  std::mutex mu;
  std::vector<std::vector<std::uint64_t>> per_tid(4);
  eng.run([&](unsigned tid, std::span<const std::uint64_t> mine,
              std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
    std::lock_guard lk(mu);
    per_tid[tid].insert(per_tid[tid].end(), mine.begin(), mine.end());
  });
  // 8 items over 4 workers round-robin: worker t gets {t, t+4}.
  for (unsigned t = 0; t < 4; ++t) {
    ASSERT_EQ(per_tid[t].size(), 2u) << "tid " << t;
    EXPECT_EQ(per_tid[t][0], t);
    EXPECT_EQ(per_tid[t][1], t + 4);
  }
}

TEST(Engine, EmptyHeapRunsZeroCycles) {
  EngineConfig cfg;
  cfg.node_capacity = 8;
  Engine eng(cfg);
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t>, std::span<const std::uint64_t>,
          std::vector<std::uint64_t>&) {
        FAIL() << "think must not run on an empty heap";
      });
  EXPECT_EQ(rep.cycles, 0u);
  EXPECT_EQ(rep.items_processed, 0u);
}

TEST(Engine, SmallBatchConfig) {
  EngineConfig cfg;
  cfg.node_capacity = 64;
  cfg.batch = 8;  // delete fewer than r per cycle
  cfg.think_threads = 2;
  Engine eng(cfg);
  auto items = random_items(256, 6);
  eng.seed(items);
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });
  EXPECT_EQ(rep.items_processed, 256u);
  EXPECT_GE(rep.cycles, 32u);
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);
}

TEST(Engine, QuarantineRetiresFlappingLaneAndConservesItems) {
  // Lane 1 throws on every cycle. After lane_fault_limit consecutive faults
  // it is retired from the deal; each failed share was requeued, so every
  // seeded item is eventually thought — exactly once, by a healthy lane —
  // and the heap drains empty.
  EngineConfig cfg;
  cfg.node_capacity = 16;
  cfg.think_threads = 2;
  cfg.lane_fault_limit = 3;
  Engine eng(cfg);
  auto items = random_items(200, 8);
  eng.seed(items);

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const EngineReport rep = eng.run(
      [&](unsigned tid, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        if (tid == 1) throw std::runtime_error("flapping lane");
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });

  EXPECT_EQ(rep.lanes_quarantined, 1u);
  EXPECT_GE(rep.think_faults, 3u);  // at least the streak that retired it
  EXPECT_TRUE(eng.heap().empty());
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);  // no loss, no duplication across the requeues

  // The retirement left a black-box record in the flight ring.
  bool recorded = false;
  for (const auto& ev : obs::FlightRecorder::instance().snapshot()) {
    if (ev.kind == obs::FlightKind::kLaneQuarantine && ev.a == 1) {
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded);
}

TEST(Engine, EmptyShareDoesNotResetFaultStreakOfFlappingLane) {
  // Regression for the streak-bookkeeping bug: when requeues shrink the
  // batch below the lane count, a flapping lane is sometimes dealt an EMPTY
  // share, which trivially "succeeds". The old code reset lane_streak_ on
  // that no-op, so a lane that faults on every real share could evade the
  // quarantine limit forever. Deterministic trace (r=2, two lanes, lane 1
  // throws iff its share is nonempty):
  //   c1: deal {10|20}  lane1 faults on {20}   streak 1, requeue {20}
  //   c2: deal {20|30}  lane1 faults on {30}   streak 2, requeue {30}
  //   c3: deal {30|−}   lane1 EMPTY share      streak must STAY 2
  //   c4: deal {40|50}  lane1 faults on {50}   streak 3 → quarantined
  //   c5: lane0 alone processes the requeued {50}
  EngineConfig cfg;
  cfg.node_capacity = 2;
  cfg.think_threads = 2;
  cfg.lane_fault_limit = 3;
  Engine eng(cfg);
  eng.seed(std::vector<std::uint64_t>{10, 20, 30});

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const EngineReport rep = eng.run(
      [&](unsigned tid, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
        if (tid == 1 && !mine.empty()) throw std::runtime_error("flapping");
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
        for (std::uint64_t v : mine) {
          if (v == 30) {  // one burst of follow-on work keeps c4 two-wide
            out.push_back(40);
            out.push_back(50);
          }
        }
      });

  EXPECT_EQ(rep.lanes_quarantined, 1u);  // old code: 0 (streak reset at c3)
  EXPECT_EQ(rep.think_faults, 3u);
  EXPECT_TRUE(eng.heap().empty());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

TEST(Engine, ThinkItemsCountsSuccessfulThinksOnly) {
  // Regression for the double-count: kThinkItems used to be tallied at
  // share DELIVERY, so a faulted lane's requeued items were counted once
  // per retry and the counter drifted past items-actually-thought. It must
  // equal the number of items that passed through a SUCCESSFUL think.
  if (!telemetry::kEnabled) GTEST_SKIP() << "built without PH_TELEMETRY";
  const std::uint64_t before = telemetry::Registry::instance().collect().get(
      telemetry::Counter::kThinkItems);

  EngineConfig cfg;
  cfg.node_capacity = 2;
  cfg.think_threads = 2;
  cfg.lane_fault_limit = 3;
  Engine eng(cfg);
  eng.seed(std::vector<std::uint64_t>{10, 20, 30});
  eng.run([&](unsigned tid, std::span<const std::uint64_t> mine,
              std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
    if (tid == 1 && !mine.empty()) throw std::runtime_error("flapping");
    for (std::uint64_t v : mine) {
      if (v == 30) {
        out.push_back(40);
        out.push_back(50);
      }
    }
  });

  const std::uint64_t after = telemetry::Registry::instance().collect().get(
      telemetry::Counter::kThinkItems);
  // Lane 0 successfully thinks exactly {10,20,30,40,50}; lane 1's faulted
  // shares (20, 30, 50 at delivery) must NOT be counted.
  EXPECT_EQ(after - before, 5u);
}

TEST(Engine, ThinkTeamRunMatchesOracleAcrossTeamSizes) {
  // ROADMAP carry-over: drive the ENGINE'S OWN run() loop — think team,
  // round-robin deal, requeue-free steady state — through a differential
  // trace. The per-cycle deleted batch (the `batch` span every lane
  // receives) must be bit-identical across think-team sizes AND match the
  // sorted-multiset oracle fed the same value-deterministic feedback, which
  // pins the full think-team schedule to the serial semantics.
  constexpr std::size_t kR = 16;
  constexpr std::uint64_t kMaxItems = 4000;
  std::vector<std::vector<std::vector<std::uint64_t>>> streams;

  struct Cfg {
    unsigned think, maint;
  };
  for (const Cfg tc : {Cfg{0, 0}, Cfg{2, 0}, Cfg{3, 2}}) {
    EngineConfig cfg;
    cfg.node_capacity = kR;
    cfg.think_threads = tc.think;
    cfg.maintenance_threads = tc.maint;
    Engine eng(cfg);
    eng.seed(random_items(300, 42, 1u << 20));

    std::mutex mu;
    std::vector<std::vector<std::uint64_t>> batches;
    eng.run(
        [&](unsigned tid, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t> batch, std::vector<std::uint64_t>& out) {
          if (tid == 0) {  // one recorder per cycle; every lane sees `batch`
            std::lock_guard lk(mu);
            batches.emplace_back(batch.begin(), batch.end());
          }
          // Value-deterministic feedback: the produced multiset depends only
          // on the deleted values, never on the deal or the schedule.
          for (std::uint64_t v : mine) out.push_back(v + 1 + (v & 0xff));
        },
        kMaxItems);
    streams.push_back(std::move(batches));
  }

  ASSERT_EQ(streams[1], streams[0]);
  ASSERT_EQ(streams[2], streams[0]);

  // Oracle lockstep over the recorded stream: batch 0 is the post-seed
  // delete; each later batch deletes after inserting the feedback of the
  // previous one.
  testing::SortedOracle oracle;
  std::vector<std::uint64_t> fresh = random_items(300, 42, 1u << 20);
  for (const auto& batch : streams[0]) {
    std::vector<std::uint64_t> want;
    oracle.cycle(fresh, kR, want);
    ASSERT_EQ(batch, want);
    fresh.clear();
    for (std::uint64_t v : want) fresh.push_back(v + 1 + (v & 0xff));
  }
}

TEST(Engine, LastAliveLaneIsNeverQuarantined) {
  // A single lane that always fails must keep flapping (degraded beats
  // dead): no quarantine, and the max_items bound — which counts failed
  // shares — still terminates the run.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 1;
  cfg.lane_fault_limit = 2;
  Engine eng(cfg);
  eng.seed(random_items(64, 9));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t>, std::span<const std::uint64_t>,
          std::vector<std::uint64_t>&) -> void {
        throw std::runtime_error("always failing");
      },
      /*max_items=*/500);
  EXPECT_EQ(rep.lanes_quarantined, 0u);
  EXPECT_GT(rep.think_faults, cfg.lane_fault_limit);
  EXPECT_EQ(eng.heap().size(), 64u);  // every share was requeued
}

TEST(Engine, CycleApiMatchesOracleWithMaintenanceTeam) {
  // The public batch surface (cycle()) drives the engine's own maintenance
  // team; its deletion stream must match the sorted-multiset oracle exactly.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 0;
  cfg.maintenance_threads = 2;
  Engine eng(cfg);
  testing::SortedOracle oracle;
  Xoshiro256 rng(10);
  std::vector<std::uint64_t> got, want, fresh;
  for (int cycle = 0; cycle < 300; ++cycle) {
    fresh.clear();
    for (std::size_t i = rng.next_below(10); i > 0; --i) {
      fresh.push_back(rng.next_below(1u << 18));
    }
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    eng.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;
  }
  for (;;) {
    got.clear();
    want.clear();
    const std::size_t ne = eng.cycle({}, 8, got);
    const std::size_t no = oracle.cycle({}, 8, want);
    ASSERT_EQ(got, want);
    if (ne == 0 && no == 0) break;
  }
  std::string why;
  EXPECT_TRUE(eng.heap().check_invariants(&why)) << why;
}

TEST(Engine, ReportsPhaseTimes) {
  EngineConfig cfg;
  cfg.node_capacity = 32;
  cfg.think_threads = 2;
  Engine eng(cfg);
  eng.seed(random_items(2000, 7));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        // Tiny spin to make think time visible.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t v : mine) {
          for (int i = 0; i < 50; ++i) sink = sink + v;
        }
      });
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_GE(rep.maint_seconds, 0.0);
  EXPECT_GE(rep.root_seconds, 0.0);
}

}  // namespace
}  // namespace ph
