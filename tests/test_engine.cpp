// Tests for the multithreaded ParallelHeapEngine: batch delivery order,
// determinism across team sizes, overlap plumbing, the maintenance-team
// parallel path, think-lane quarantine, and the public cycle() surface.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "testing/oracle.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using Engine = ParallelHeapEngine<std::uint64_t>;

std::vector<std::uint64_t> random_items(std::size_t n, std::uint64_t seed,
                                        std::uint64_t bound = 1u << 30) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

TEST(Engine, DrainsSeededHeapInAscendingBatches) {
  EngineConfig cfg;
  cfg.node_capacity = 16;
  cfg.think_threads = 2;
  Engine eng(cfg);
  auto items = random_items(500, 1);
  eng.seed(items);

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  std::vector<std::uint64_t> batch_maxes;
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });

  EXPECT_EQ(rep.items_processed, items.size());
  EXPECT_EQ(seen.size(), items.size());
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);
  EXPECT_GT(rep.cycles, items.size() / 16 - 1);
  EXPECT_TRUE(eng.heap().empty());
}

TEST(Engine, BatchesAreGloballyOrdered) {
  // Batch b+1's smallest item must be >= batch b's largest: the engine hands
  // out the k globally smallest per cycle.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 1;
  Engine eng(cfg);
  auto items = random_items(400, 2);
  eng.seed(items);

  std::vector<std::uint64_t> batch_sorted;
  std::uint64_t prev_max = 0;
  bool first = true;
  bool ordered = true;
  eng.run([&](unsigned, std::span<const std::uint64_t> mine,
              std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
    // Single think thread: `mine` is the whole batch (round-robin of 1).
    batch_sorted.assign(mine.begin(), mine.end());
    std::sort(batch_sorted.begin(), batch_sorted.end());
    if (!first && !batch_sorted.empty() && batch_sorted.front() < prev_max) {
      ordered = false;
    }
    if (!batch_sorted.empty()) {
      prev_max = batch_sorted.back();
      first = false;
    }
  });
  EXPECT_TRUE(ordered);
}

// Hold-model think: every consumed item produces one new item with a larger
// key, value-deterministic so results are comparable across configurations.
void hold_think(std::span<const std::uint64_t> mine, std::vector<std::uint64_t>& out) {
  for (std::uint64_t v : mine) {
    out.push_back(v + 1 + (v * 2654435761u) % 1000);
  }
}

TEST(Engine, SteadyStateHoldModelStopsAtMaxItems) {
  EngineConfig cfg;
  cfg.node_capacity = 32;
  cfg.think_threads = 2;
  Engine eng(cfg);
  eng.seed(random_items(1000, 3, 1u << 20));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
        hold_think(mine, out);
      },
      /*max_items=*/5000);
  EXPECT_GE(rep.items_processed, 5000u);
  EXPECT_LT(rep.items_processed, 5000u + cfg.node_capacity);
  // Steady state: one insert per delete, heap stays ~1000.
  EXPECT_EQ(eng.heap().size(), 1000u);
}

TEST(Engine, DeterministicAcrossThinkTeamSizes) {
  // The multiset of processed items must be identical for 0, 1, 2, 4 think
  // threads (the hold think is value-deterministic).
  std::vector<std::vector<std::uint64_t>> results;
  for (unsigned threads : {0u, 1u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.node_capacity = 16;
    cfg.think_threads = threads;
    Engine eng(cfg);
    eng.seed(random_items(300, 4, 1u << 16));
    std::mutex mu;
    std::vector<std::uint64_t> seen;
    eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          {
            std::lock_guard lk(mu);
            seen.insert(seen.end(), mine.begin(), mine.end());
          }
          hold_think(mine, out);
        },
        /*max_items=*/3000);
    std::sort(seen.begin(), seen.end());
    results.push_back(std::move(seen));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "config " << i;
  }
}

TEST(Engine, MaintenanceTeamMatchesSerialMaintenance) {
  std::vector<std::vector<std::uint64_t>> results;
  for (unsigned mt : {0u, 2u, 4u}) {
    EngineConfig cfg;
    cfg.node_capacity = 16;
    cfg.think_threads = 1;
    cfg.maintenance_threads = mt;
    Engine eng(cfg);
    eng.seed(random_items(400, 5, 1u << 18));
    std::vector<std::uint64_t> seen;
    eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          seen.insert(seen.end(), mine.begin(), mine.end());
          hold_think(mine, out);
        },
        /*max_items=*/4000);
    std::sort(seen.begin(), seen.end());
    results.push_back(std::move(seen));
  }
  EXPECT_EQ(results[1], results[0]);
  EXPECT_EQ(results[2], results[0]);
}

TEST(Engine, RoundRobinDealAcrossWorkers) {
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 4;
  Engine eng(cfg);
  std::vector<std::uint64_t> items(8);
  for (std::size_t i = 0; i < 8; ++i) items[i] = i;
  eng.seed(items);
  std::mutex mu;
  std::vector<std::vector<std::uint64_t>> per_tid(4);
  eng.run([&](unsigned tid, std::span<const std::uint64_t> mine,
              std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
    std::lock_guard lk(mu);
    per_tid[tid].insert(per_tid[tid].end(), mine.begin(), mine.end());
  });
  // 8 items over 4 workers round-robin: worker t gets {t, t+4}.
  for (unsigned t = 0; t < 4; ++t) {
    ASSERT_EQ(per_tid[t].size(), 2u) << "tid " << t;
    EXPECT_EQ(per_tid[t][0], t);
    EXPECT_EQ(per_tid[t][1], t + 4);
  }
}

TEST(Engine, EmptyHeapRunsZeroCycles) {
  EngineConfig cfg;
  cfg.node_capacity = 8;
  Engine eng(cfg);
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t>, std::span<const std::uint64_t>,
          std::vector<std::uint64_t>&) {
        FAIL() << "think must not run on an empty heap";
      });
  EXPECT_EQ(rep.cycles, 0u);
  EXPECT_EQ(rep.items_processed, 0u);
}

TEST(Engine, SmallBatchConfig) {
  EngineConfig cfg;
  cfg.node_capacity = 64;
  cfg.batch = 8;  // delete fewer than r per cycle
  cfg.think_threads = 2;
  Engine eng(cfg);
  auto items = random_items(256, 6);
  eng.seed(items);
  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });
  EXPECT_EQ(rep.items_processed, 256u);
  EXPECT_GE(rep.cycles, 32u);
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);
}

TEST(Engine, QuarantineRetiresFlappingLaneAndConservesItems) {
  // Lane 1 throws on every cycle. After lane_fault_limit consecutive faults
  // it is retired from the deal; each failed share was requeued, so every
  // seeded item is eventually thought — exactly once, by a healthy lane —
  // and the heap drains empty.
  EngineConfig cfg;
  cfg.node_capacity = 16;
  cfg.think_threads = 2;
  cfg.lane_fault_limit = 3;
  Engine eng(cfg);
  auto items = random_items(200, 8);
  eng.seed(items);

  std::mutex mu;
  std::vector<std::uint64_t> seen;
  const EngineReport rep = eng.run(
      [&](unsigned tid, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        if (tid == 1) throw std::runtime_error("flapping lane");
        std::lock_guard lk(mu);
        seen.insert(seen.end(), mine.begin(), mine.end());
      });

  EXPECT_EQ(rep.lanes_quarantined, 1u);
  EXPECT_GE(rep.think_faults, 3u);  // at least the streak that retired it
  EXPECT_TRUE(eng.heap().empty());
  std::sort(seen.begin(), seen.end());
  std::sort(items.begin(), items.end());
  EXPECT_EQ(seen, items);  // no loss, no duplication across the requeues

  // The retirement left a black-box record in the flight ring.
  bool recorded = false;
  for (const auto& ev : obs::FlightRecorder::instance().snapshot()) {
    if (ev.kind == obs::FlightKind::kLaneQuarantine && ev.a == 1) {
      recorded = true;
    }
  }
  EXPECT_TRUE(recorded);
}

TEST(Engine, LastAliveLaneIsNeverQuarantined) {
  // A single lane that always fails must keep flapping (degraded beats
  // dead): no quarantine, and the max_items bound — which counts failed
  // shares — still terminates the run.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 1;
  cfg.lane_fault_limit = 2;
  Engine eng(cfg);
  eng.seed(random_items(64, 9));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t>, std::span<const std::uint64_t>,
          std::vector<std::uint64_t>&) -> void {
        throw std::runtime_error("always failing");
      },
      /*max_items=*/500);
  EXPECT_EQ(rep.lanes_quarantined, 0u);
  EXPECT_GT(rep.think_faults, cfg.lane_fault_limit);
  EXPECT_EQ(eng.heap().size(), 64u);  // every share was requeued
}

TEST(Engine, CycleApiMatchesOracleWithMaintenanceTeam) {
  // The public batch surface (cycle()) drives the engine's own maintenance
  // team; its deletion stream must match the sorted-multiset oracle exactly.
  EngineConfig cfg;
  cfg.node_capacity = 8;
  cfg.think_threads = 0;
  cfg.maintenance_threads = 2;
  Engine eng(cfg);
  testing::SortedOracle oracle;
  Xoshiro256 rng(10);
  std::vector<std::uint64_t> got, want, fresh;
  for (int cycle = 0; cycle < 300; ++cycle) {
    fresh.clear();
    for (std::size_t i = rng.next_below(10); i > 0; --i) {
      fresh.push_back(rng.next_below(1u << 18));
    }
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    eng.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;
  }
  for (;;) {
    got.clear();
    want.clear();
    const std::size_t ne = eng.cycle({}, 8, got);
    const std::size_t no = oracle.cycle({}, 8, want);
    ASSERT_EQ(got, want);
    if (ne == 0 && no == 0) break;
  }
  std::string why;
  EXPECT_TRUE(eng.heap().check_invariants(&why)) << why;
}

TEST(Engine, ReportsPhaseTimes) {
  EngineConfig cfg;
  cfg.node_capacity = 32;
  cfg.think_threads = 2;
  Engine eng(cfg);
  eng.seed(random_items(2000, 7));
  const EngineReport rep = eng.run(
      [&](unsigned, std::span<const std::uint64_t> mine,
          std::span<const std::uint64_t>, std::vector<std::uint64_t>&) {
        // Tiny spin to make think time visible.
        volatile std::uint64_t sink = 0;
        for (std::uint64_t v : mine) {
          for (int i = 0; i < 50; ++i) sink = sink + v;
        }
      });
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_GE(rep.maint_seconds, 0.0);
  EXPECT_GE(rep.root_seconds, 0.0);
}

}  // namespace
}  // namespace ph
