// Tests for the differential stress harness itself: trace generation and
// round-tripping, the oracle, the shrinker, and — the harness's reason to
// exist — that it catches a re-injected historical bug (the pipelined
// delete-update revert-note bug) and produces a replayable reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "testing/oracle.hpp"
#include "testing/shrink.hpp"
#include "testing/stress.hpp"
#include "testing/structures.hpp"

namespace ph::testing {
namespace {

TEST(StressHarness, GenerateTraceIsDeterministic) {
  GenConfig cfg;
  cfg.r = 8;
  cfg.cycles = 200;
  cfg.seed = 42;
  const OpTrace a = generate_trace(cfg);
  const OpTrace b = generate_trace(cfg);
  EXPECT_EQ(a, b);
  cfg.seed = 43;
  EXPECT_NE(generate_trace(cfg), a);
  EXPECT_EQ(a.ops.size(), cfg.cycles);
  for (const Op& op : a.ops) EXPECT_LE(op.k, cfg.r);
}

TEST(StressHarness, TraceRoundTripsThroughText) {
  GenConfig cfg;
  cfg.r = 5;
  cfg.cycles = 80;
  cfg.seed = 7;
  OpTrace t = generate_trace(cfg);
  t.structure = "batch_binary_heap";
  OpTrace parsed;
  std::string err;
  ASSERT_TRUE(OpTrace::from_text(t.to_text(), parsed, &err)) << err;
  EXPECT_EQ(parsed, t);
}

TEST(StressHarness, FromTextRejectsMalformed) {
  OpTrace out;
  std::string err;
  EXPECT_FALSE(OpTrace::from_text("not-a-repro 1\n", out, &err));
  EXPECT_FALSE(OpTrace::from_text("ph-repro 2\n", out, &err));
  // k exceeding r is structurally invalid.
  EXPECT_FALSE(OpTrace::from_text(
      "ph-repro 1\nstructure x\nr 2\nseed 0\nops 1\nop 3 0\n", out, &err));
  // Truncated key list.
  EXPECT_FALSE(OpTrace::from_text(
      "ph-repro 1\nstructure x\nr 2\nseed 0\nops 1\nop 1 2 5\n", out, &err));
}

TEST(StressHarness, OracleMatchesSortDrain) {
  SortedOracle o;
  std::vector<std::uint64_t> out;
  const std::vector<std::uint64_t> first = {5, 1, 3};
  o.cycle(first, 2, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 3}));
  out.clear();
  const std::vector<std::uint64_t> second = {2, 2};
  o.cycle(second, 4, out);  // only 3 items present: 5 plus the two 2s
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2, 2, 5}));
  EXPECT_TRUE(o.empty());
}

TEST(StressHarness, DefaultStructuresPassSmallSoak) {
  StressConfig cfg;
  cfg.r_values = {2, 8};
  cfg.key_bounds = {256, std::uint64_t{1} << 40};
  cfg.cycles = 80;
  cfg.rounds = 1;
  cfg.seed = 11;
  const StressReport rep = run_stress(cfg);
  EXPECT_TRUE(rep.ok()) << (rep.failures.empty()
                                ? std::string()
                                : rep.failures.front().failure.message);
  EXPECT_EQ(rep.traces_run, default_structures().size() * cfg.r_values.size() *
                                cfg.key_bounds.size() * cfg.rounds);
  EXPECT_EQ(rep.traces_skipped, 0u);
}

TEST(StressHarness, UnknownStructureFailsLoudly) {
  OpTrace t;
  t.structure = "no_such_structure";
  const DiffFailure f = run_trace(t);
  EXPECT_TRUE(f.failed);
  EXPECT_NE(f.message.find("unknown structure"), std::string::npos);
}

TEST(StressHarness, InjectedFaultIsCaughtShrunkAndReplayable) {
  // The harness must detect the documented delete-update revert-note bug
  // (re-injected behind a testing-only knob) within a small soak budget, and
  // the minimized reproducer must replay the failure from its text form.
  StressConfig cfg;
  cfg.structures = {"pipelined_heap_faulty"};
  cfg.cycles = 400;
  cfg.rounds = 2;
  cfg.seed = 1;
  cfg.max_failures = 1;
  const StressReport rep = run_stress(cfg);
  ASSERT_FALSE(rep.ok()) << "injected fault was not detected";
  const StressFailure& sf = rep.failures.front();

  // The stored trace is the minimized one and still fails.
  const DiffFailure again = run_trace(sf.trace);
  EXPECT_TRUE(again.failed);
  EXPECT_LE(sf.trace.ops.size(), cfg.cycles);

  // Round-trip through the reproducer text: bit-identical replay.
  OpTrace parsed;
  std::string err;
  ASSERT_TRUE(OpTrace::from_text(sf.trace.to_text(), parsed, &err)) << err;
  EXPECT_EQ(parsed, sf.trace);
  const DiffFailure replay = run_trace(parsed);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.op_index, again.op_index);
  EXPECT_EQ(replay.message, again.message);

  // The healthy pipelined heap passes the same minimized trace.
  OpTrace healthy = sf.trace;
  healthy.structure = "pipelined_heap";
  EXPECT_FALSE(run_trace(healthy).failed);
}

TEST(StressHarness, ReproDirIsCreatedIfMissing) {
  // CI hands the soak a reproducer directory that does not exist yet; the
  // harness must create it rather than silently dropping the reproducer
  // (which would make the upload-on-failure artifact empty exactly when a
  // failure happened).
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ph_stress_test_repro" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  StressConfig cfg;
  cfg.structures = {"pipelined_heap_faulty"};
  cfg.cycles = 400;
  cfg.rounds = 1;
  cfg.seed = 1;
  cfg.max_failures = 1;
  cfg.shrink = false;  // keep it fast; writing is what's under test
  cfg.repro_dir = dir.string();
  const StressReport rep = run_stress(cfg);
  ASSERT_FALSE(rep.ok());
  const StressFailure& sf = rep.failures.front();
  EXPECT_FALSE(sf.repro_path.empty()) << "reproducer was not written";
  EXPECT_TRUE(std::filesystem::exists(sf.repro_path));
  std::filesystem::remove_all(dir.parent_path());
}

TEST(StressHarness, ShrinkerMinimizesToTheFailingKey) {
  // Synthetic predicate: a trace "fails" iff it still contains the key 42.
  // The shrinker must reduce a 60-op trace to a single op with that one key.
  GenConfig gen;
  gen.r = 8;
  gen.cycles = 60;
  gen.key_bound = 40;  // generator never produces 42 on its own
  gen.seed = 3;
  OpTrace t = generate_trace(gen);
  t.ops[25].fresh.push_back(42);
  const TracePredicate fails = [](const OpTrace& cand) -> DiffFailure {
    for (std::size_t i = 0; i < cand.ops.size(); ++i) {
      for (std::uint64_t key : cand.ops[i].fresh) {
        if (key == 42) return {true, i, "contains 42"};
      }
    }
    return {};
  };
  ShrinkStats st;
  const OpTrace small = shrink_trace(t, fails, 4000, &st);
  EXPECT_TRUE(fails(small).failed);
  EXPECT_EQ(small.ops.size(), 1u);
  EXPECT_EQ(small.total_keys(), 1u);
  EXPECT_EQ(small.ops[0].fresh[0], 42u);
  EXPECT_GT(st.accepted, 0u);
  // Determinism: same input and predicate, same minimized trace.
  EXPECT_EQ(shrink_trace(t, fails, 4000), small);
}

TEST(StressHarness, ShrinkerReturnsPassingTraceUnchanged) {
  GenConfig gen;
  gen.cycles = 10;
  const OpTrace t = generate_trace(gen);
  const TracePredicate never = [](const OpTrace&) -> DiffFailure { return {}; };
  EXPECT_EQ(shrink_trace(t, never), t);
}

TEST(StressHarness, StressSweepIsSeedDeterministic) {
  // Same master seed → same failure set (including the minimized traces).
  StressConfig cfg;
  cfg.structures = {"pipelined_heap_faulty"};
  cfg.cycles = 400;
  cfg.rounds = 1;
  cfg.r_values = {3, 8};
  cfg.seed = 5;
  cfg.max_failures = 2;
  const StressReport a = run_stress(cfg);
  const StressReport b = run_stress(cfg);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].trace, b.failures[i].trace);
    EXPECT_EQ(a.failures[i].failure.message, b.failures[i].failure.message);
  }
}

}  // namespace
}  // namespace ph::testing
