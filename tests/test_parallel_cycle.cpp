// Tests for PR7's concurrent shard pipelines (core/sharded_heap.hpp):
// worker-team bit-exactness across assignments (striped W<=A and crewed
// W>A), the overlapped-putback handshake, the cross-shard min hint's
// exactness and putback reduction, per-worker occupancy accounting, the
// timestamp-band DES routing, and the new differential-registry entries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sharded_heap.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sharded_sim.hpp"
#include "testing/op_trace.hpp"
#include "testing/oracle.hpp"
#include "testing/structures.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
using testing::GenConfig;
using testing::OpTrace;
using testing::SortedOracle;

ShardedHeap<U64>::Config base_cfg(std::size_t shards) {
  ShardedHeap<U64>::Config c;
  c.shards = shards;
  c.rebalance_interval = 16;
  c.sample_capacity = 256;
  return c;
}

// --------------------------------------------------- worker-team exactness

TEST(ParallelCycle, WorkerTeamBitExactAcrossAssignments) {
  // Every (shards, workers, overlap) combination must produce the byte-
  // identical deletion stream of the serial (workers=0) reference — per
  // cycle AND through the final drain. workers > shards exercises the crew
  // split of odd/even levels inside one shard; workers <= shards the striped
  // whole-pipeline assignment.
  GenConfig gen;
  gen.r = 8;
  gen.cycles = 250;
  gen.seed = 41;
  const OpTrace t = generate_trace(gen);

  for (std::size_t shards : {std::size_t{3}, std::size_t{4}}) {
    // Serial reference stream.
    std::vector<std::vector<U64>> ref;
    {
      ShardedHeap<U64> q(gen.r, base_cfg(shards));
      for (const auto& op : t.ops) {
        ref.emplace_back();
        q.cycle(op.fresh, std::min(op.k, gen.r), ref.back());
      }
      for (;;) {
        ref.emplace_back();
        if (q.cycle({}, gen.r, ref.back()) == 0) break;
      }
    }
    for (unsigned workers : {1u, 2u, 5u}) {
      for (bool overlap : {false, true}) {
        ShardedHeap<U64>::Config cfg = base_cfg(shards);
        cfg.workers = workers;
        cfg.overlap_putback = overlap;
        ShardedHeap<U64> q(gen.r, cfg);
        std::vector<U64> got;
        std::size_t i = 0;
        for (const auto& op : t.ops) {
          got.clear();
          q.cycle(op.fresh, std::min(op.k, gen.r), got);
          ASSERT_EQ(got, ref[i]) << "shards=" << shards << " W=" << workers
                                 << " overlap=" << overlap << " cycle " << i;
          ++i;
        }
        for (;;) {
          got.clear();
          const std::size_t n = q.cycle({}, gen.r, got);
          ASSERT_EQ(got, ref[i]) << "drain cycle " << i;
          ++i;
          if (n == 0) break;
        }
        // The run must actually have used the team.
        EXPECT_GT(q.sharded_stats().parallel_cycles, 0u)
            << "shards=" << shards << " W=" << workers;
        std::string why;
        EXPECT_TRUE(q.check_invariants(&why)) << why;
      }
    }
  }
}

// ----------------------------------------------------- overlap handshake

TEST(ParallelCycle, OverlapPutbackHandshake) {
  // With overlap on, cycle() may return while the putback still runs on the
  // team; putback_pending() is observable, quiesce() joins it, and every
  // state-reading entry point (sorted_contents here) self-quiesces — the
  // caller can never observe a half-returned prefix.
  ShardedHeap<U64>::Config cfg = base_cfg(3);
  cfg.workers = 2;
  cfg.overlap_putback = true;
  ShardedHeap<U64> q(8, cfg);
  SortedOracle oracle;
  Xoshiro256 rng(77);
  std::vector<U64> got, want, fresh;
  bool saw_pending = false;

  for (int cycle = 0; cycle < 300; ++cycle) {
    fresh.clear();
    for (std::size_t i = rng.next_below(12); i > 0; --i) {
      fresh.push_back(rng.next_below(4096));
    }
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    q.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;
    if (q.putback_pending()) {
      saw_pending = true;
      if (cycle % 7 == 0) {
        // Explicit join path; idempotent (second call is a no-op).
        q.quiesce();
        q.quiesce();
        EXPECT_FALSE(q.putback_pending());
      } else if (cycle % 11 == 0) {
        // Implicit join: a state read must see the settled structure.
        EXPECT_EQ(q.sorted_contents(), oracle.contents()) << "cycle " << cycle;
        EXPECT_FALSE(q.putback_pending());
      }
    }
  }
  EXPECT_TRUE(saw_pending)
      << "trace never left a putback in flight; overlap path untested";
  EXPECT_EQ(q.sorted_contents(), oracle.contents());
}

// ------------------------------------------------------------ min hint

TEST(ParallelCycle, MinHintSkipsLosingShardsExactly) {
  // Seed the partition map so shard 0 owns all the small keys, then drain:
  // shards 1..2 provably lose every tournament and the hint must skip their
  // pull/putback round-trips — with the deletion stream identical to the
  // hint-off run, fewer putbacks, and hint_skips counted.
  auto run = [](bool hint, ShardedStats* stats) {
    ShardedHeap<U64>::Config cfg = base_cfg(3);
    cfg.rebalance_interval = 0;  // keep the seeded map
    cfg.min_hint = hint;
    ShardedHeap<U64> q(8, cfg);
    std::vector<U64> seedv;
    for (U64 v = 0; v < 300; ++v) seedv.push_back(v * 3);
    q.build(seedv);
    std::vector<std::vector<U64>> stream;
    Xoshiro256 rng(5);
    std::vector<U64> fresh;
    for (int cycle = 0; cycle < 120; ++cycle) {
      fresh.clear();
      for (std::size_t i = rng.next_below(4); i > 0; --i) {
        fresh.push_back(rng.next_below(1000));
      }
      stream.emplace_back();
      q.cycle(fresh, rng.next_below(9), stream.back());
    }
    for (;;) {
      stream.emplace_back();
      if (q.cycle({}, 8, stream.back()) == 0) break;
    }
    *stats = q.sharded_stats();
    return stream;
  };

  ShardedStats with_hint, without;
  const auto s1 = run(true, &with_hint);
  const auto s0 = run(false, &without);
  EXPECT_EQ(s1, s0) << "hint changed the deletion stream";
  EXPECT_GT(with_hint.hint_skips, 0u);
  EXPECT_EQ(without.hint_skips, 0u);
  EXPECT_LE(with_hint.putbacks, without.putbacks);
  EXPECT_LT(with_hint.putbacks, without.putbacks)
      << "hint never removed a putback round-trip on this workload";
}

// ----------------------------------------------------- occupancy mirror

TEST(ParallelCycle, WorkerOccupancyCountersPopulate) {
  ShardedHeap<U64>::Config cfg = base_cfg(3);
  cfg.workers = 2;
  cfg.overlap_putback = true;
  ShardedHeap<U64> q(16, cfg);
  Xoshiro256 rng(9);
  std::vector<U64> got, fresh;
  for (int cycle = 0; cycle < 100; ++cycle) {
    fresh.clear();
    for (std::size_t i = rng.next_below(24); i > 0; --i) {
      fresh.push_back(rng());
    }
    got.clear();
    q.cycle(fresh, rng.next_below(17), got);
  }
  q.quiesce();
  const auto& live = q.live();
  ASSERT_EQ(live.worker_busy_ns.size(), 2u);
  std::uint64_t phases = 0;
  std::uint64_t busy = 0;
  for (std::size_t w = 0; w < 2; ++w) {
    phases += live.worker_phases[w].load();
    busy += live.worker_busy_ns[w].load();
  }
  // Every worker ran pull stints on every parallel cycle; both counters
  // must have advanced (busy-ns can be tiny but not zero over 100 cycles).
  EXPECT_GT(phases, 0u);
  EXPECT_GT(busy, 0u);
  EXPECT_GT(q.sharded_stats().parallel_cycles, 0u);
}

// ------------------------------------------------------- banded DES routing

TEST(ParallelCycle, BandedRoutingExactOnDes) {
  const sim::Topology topo = sim::make_torus(8, 8);
  sim::ModelConfig mc;
  mc.seed = 21;
  const sim::Model model(topo, mc);
  const double end_time = 40.0;
  const sim::SimResult want = sim::run_serial_sim(model, end_time);
  ASSERT_GT(want.processed, 0u);

  for (double band : {0.0, 0.5, 4.0}) {  // 0 = auto (lookahead width)
    sim::ShardedSimConfig cfg;
    cfg.shards = 3;
    cfg.node_capacity = 32;
    cfg.batch = 32;
    cfg.band_width = band;
    const sim::ShardedSimResult got = sim::run_sharded_sim(model, end_time, cfg);
    EXPECT_TRUE(got.sim.same_outcome(want)) << "band=" << band;
    EXPECT_GT(got.shard.routed, 0u);
    // Band routing replaces the quantile partitioner; there is no map to
    // re-estimate, so no rebalances can occur.
    EXPECT_EQ(got.shard.rebalances, 0u) << "band=" << band;
  }
}

TEST(ParallelCycle, BandedRoutingWithWorkersExact) {
  const sim::Topology topo = sim::make_torus(6, 6);
  sim::ModelConfig mc;
  mc.seed = 33;
  const sim::Model model(topo, mc);
  const double end_time = 30.0;
  const sim::SimResult want = sim::run_serial_sim(model, end_time);

  sim::ShardedSimConfig cfg;
  cfg.shards = 3;
  cfg.node_capacity = 32;
  cfg.batch = 32;
  cfg.band_width = 0.0;  // auto
  cfg.workers = 2;
  cfg.overlap_putback = true;
  const sim::ShardedSimResult got = sim::run_sharded_sim(model, end_time, cfg);
  EXPECT_TRUE(got.sim.same_outcome(want));
  EXPECT_GT(got.shard.parallel_cycles, 0u);
}

// ------------------------------------------------- flat-combining baseline

TEST(ParallelCycle, FlatCombiningSingleThreadIsExactPQ) {
  FlatCombiningPQ<U64> q(1);
  std::vector<U64> items;
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    items.push_back(rng.next_below(1u << 20));
    q.push(0, items.back());
  }
  EXPECT_EQ(q.size(), items.size());
  std::sort(items.begin(), items.end());
  for (U64 want : items) {
    U64 got = 0;
    ASSERT_TRUE(q.try_pop(0, got));
    EXPECT_EQ(got, want);
  }
  U64 none = 0;
  EXPECT_FALSE(q.try_pop(0, none));
  EXPECT_GT(q.combines(), 0u);
  EXPECT_GE(q.combined_ops(), 1000u);
}

// ------------------------------------------------- differential registry

TEST(ParallelCycle, RegistryEntriesPassDifferential) {
  // The new structures ride the full adversarial differential runner: the
  // concurrent sharded configs bit-exact, the engine surface bit-exact, the
  // flat-combining team under conservation checking.
  for (const char* name :
       {"sharded_heap_conc", "sharded_heap_crew", "engine_team",
        "flat_combining_mt"}) {
    for (std::uint64_t seed : {11u, 47u}) {
      GenConfig gen;
      gen.r = 8;
      gen.cycles = 200;
      gen.seed = seed;
      OpTrace t = generate_trace(gen);
      t.structure = name;
      const auto f = testing::run_trace(t);
      EXPECT_FALSE(f.failed) << name << " seed " << seed << ": " << f.message;
    }
  }
}

}  // namespace
}  // namespace ph
