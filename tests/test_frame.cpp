// Frame-codec robustness drills (src/dist/frame.hpp): the shared stream
// framing under every localhost wire — shard transport and the scheduler
// service listener. The contract under test: torn frames never produce
// output, oversized length prefixes and CRC damage are loud immediate
// errors (sticky kBad, bounded memory, no overread — asan is watching),
// zero-length payloads round-trip, and byte-at-a-time delivery changes
// nothing.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "dist/frame.hpp"
#include "persist/format.hpp"

namespace ph {
namespace {

using dist::FrameParser;
using dist::FrameStatus;

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return p;
}

std::vector<std::uint8_t> frame_of(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  persist::append_frame(wire, std::span<const std::uint8_t>(payload));
  return wire;
}

TEST(FrameParser, RoundTripsSingleFrame) {
  FrameParser p;
  const auto payload = make_payload(257);
  const auto wire = frame_of(payload);
  p.feed(std::span<const std::uint8_t>(wire));
  std::vector<std::uint8_t> got;
  ASSERT_EQ(p.next(got), FrameStatus::kFrame);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(p.next(got), FrameStatus::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameParser, RoundTripsZeroLengthPayload) {
  FrameParser p;
  const std::vector<std::uint8_t> empty;
  const auto wire = frame_of(empty);
  ASSERT_EQ(wire.size(), 8u);  // header only
  p.feed(std::span<const std::uint8_t>(wire));
  std::vector<std::uint8_t> got{0xAA};  // must be overwritten to empty
  ASSERT_EQ(p.next(got), FrameStatus::kFrame);
  EXPECT_TRUE(got.empty());
  EXPECT_FALSE(p.poisoned());
}

TEST(FrameParser, CutsBackToBackFramesFromOneFeed) {
  FrameParser p;
  std::vector<std::uint8_t> wire;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(make_payload(16 * (i + 1), static_cast<std::uint8_t>(i)));
    const auto f = frame_of(payloads.back());
    wire.insert(wire.end(), f.begin(), f.end());
  }
  p.feed(std::span<const std::uint8_t>(wire));
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(p.next(got), FrameStatus::kFrame) << "frame " << i;
    EXPECT_EQ(got, payloads[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(p.next(got), FrameStatus::kNeedMore);
}

TEST(FrameParser, ByteAtATimeDeliveryIsEquivalent) {
  FrameParser p;
  const auto payload = make_payload(97);
  const auto wire = frame_of(payload);
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    p.feed(std::span<const std::uint8_t>(&wire[i], 1));
    const FrameStatus st = p.next(got);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(st, FrameStatus::kNeedMore) << "premature frame at byte " << i;
    } else {
      ASSERT_EQ(st, FrameStatus::kFrame);
      EXPECT_EQ(got, payload);
    }
  }
}

TEST(FrameParser, TornFrameNeverProducesOutputAndReportsBuffered) {
  FrameParser p;
  const auto wire = frame_of(make_payload(300));
  // Feed everything but the last byte: a torn tail, visible via buffered().
  p.feed(std::span<const std::uint8_t>(wire.data(), wire.size() - 1));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(p.next(got), FrameStatus::kNeedMore);
  EXPECT_EQ(p.next(got), FrameStatus::kNeedMore);  // stable, no progress
  EXPECT_EQ(p.buffered(), wire.size() - 1);
  EXPECT_FALSE(p.poisoned());
  // The missing byte completes it.
  p.feed(std::span<const std::uint8_t>(wire.data() + wire.size() - 1, 1));
  EXPECT_EQ(p.next(got), FrameStatus::kFrame);
}

TEST(FrameParser, OversizedLengthPrefixPoisonsBeforeBodyArrives) {
  FrameParser p;
  // A length prefix past kMaxFramePayload must be rejected from the header
  // alone — the parser must NOT wait for (or buffer toward) a 4GB body.
  std::vector<std::uint8_t> hdr;
  persist::put_u32(hdr, static_cast<std::uint32_t>(persist::kMaxFramePayload + 1));
  persist::put_u32(hdr, 0 /*crc, irrelevant*/);
  p.feed(std::span<const std::uint8_t>(hdr));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(p.next(got), FrameStatus::kBad);
  EXPECT_TRUE(p.poisoned());
  EXPECT_EQ(p.buffered(), 0u);  // poisoned parsers hold no memory
  // Sticky: even a pristine frame afterwards stays dead.
  const auto wire = frame_of(make_payload(8));
  p.feed(std::span<const std::uint8_t>(wire));
  EXPECT_EQ(p.next(got), FrameStatus::kBad);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameParser, CrcMismatchIsSticky) {
  FrameParser p;
  auto wire = frame_of(make_payload(64));
  wire[8 + 10] ^= 0x40;  // flip one payload bit: CRC must catch it
  p.feed(std::span<const std::uint8_t>(wire));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(p.next(got), FrameStatus::kBad);
  EXPECT_TRUE(p.poisoned());
  // No resynchronization: a good frame after the corruption never parses.
  const auto clean = frame_of(make_payload(16));
  p.feed(std::span<const std::uint8_t>(clean));
  EXPECT_EQ(p.next(got), FrameStatus::kBad);
}

TEST(FrameParser, CorruptHeaderCrcRejected) {
  FrameParser p;
  auto wire = frame_of(make_payload(32));
  wire[4] ^= 0x01;  // damage the stored CRC itself
  p.feed(std::span<const std::uint8_t>(wire));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(p.next(got), FrameStatus::kBad);
}

TEST(FrameParser, FeedAfterPoisonDropsBytes) {
  FrameParser p;
  std::vector<std::uint8_t> hdr;
  persist::put_u32(hdr, static_cast<std::uint32_t>(persist::kMaxFramePayload + 1));
  persist::put_u32(hdr, 0);
  p.feed(std::span<const std::uint8_t>(hdr));
  std::vector<std::uint8_t> got;
  ASSERT_EQ(p.next(got), FrameStatus::kBad);
  // Megabytes fed post-poison must not accumulate.
  const auto junk = make_payload(1 << 20);
  for (int i = 0; i < 8; ++i) p.feed(std::span<const std::uint8_t>(junk));
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameParser, ManyFramesWithCompactionStayExact) {
  // Enough traffic through one parser to cross the compaction threshold
  // repeatedly; every frame must still come out intact and in order.
  FrameParser p;
  std::vector<std::uint8_t> got;
  std::size_t delivered = 0;
  for (int round = 0; round < 200; ++round) {
    const auto payload = make_payload(512, static_cast<std::uint8_t>(round));
    const auto wire = frame_of(payload);
    // Split each frame across two feeds to keep partial tails in play.
    const std::size_t cut = wire.size() / 2;
    p.feed(std::span<const std::uint8_t>(wire.data(), cut));
    while (p.next(got) == FrameStatus::kFrame) ++delivered;
    p.feed(std::span<const std::uint8_t>(wire.data() + cut, wire.size() - cut));
    while (p.next(got) == FrameStatus::kFrame) {
      ++delivered;
      EXPECT_EQ(got, payload);
    }
  }
  EXPECT_EQ(delivered, 200u);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameSend, RoundTripsOverSocketpair) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const auto payload = make_payload(1000);
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(dist::send_frame_fd(sv[0], std::span<const std::uint8_t>(payload), wire));
  FrameParser p;
  std::vector<std::uint8_t> got;
  std::uint8_t chunk[4096];
  while (p.next(got) != FrameStatus::kFrame) {
    const ::ssize_t r = ::recv(sv[1], chunk, sizeof(chunk), 0);
    ASSERT_GT(r, 0);
    p.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
  }
  EXPECT_EQ(got, payload);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(FrameSend, DeadPeerReturnsFalseNotSignal) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // peer gone: writes must fail cleanly (no SIGPIPE)
  const auto payload = make_payload(64);
  std::vector<std::uint8_t> wire;
  EXPECT_FALSE(dist::send_frame_fd(sv[0], std::span<const std::uint8_t>(payload), wire));
  ::close(sv[0]);
}

}  // namespace
}  // namespace ph
