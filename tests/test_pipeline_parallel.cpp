// Tests of the claim that makes the engine's maintenance team sound: all
// node groups of one pipeline half-step are mutually independent, so ANY
// execution order (or interleaving) over distinct ServiceCtx instances must
// produce a bit-identical heap. We run the same schedule with the default
// in-order runner, a reversed runner, and a striped two-context runner, and
// require identical deletion streams and final contents.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using Heap = PipelinedParallelHeap<std::uint64_t>;

/// Drives `heap` through a fixed randomized schedule using a caller-chosen
/// half-step runner (the factory receives the heap so the runner can merge
/// its worker contexts back, as the engine's maintenance team does);
/// returns the concatenated deletion stream.
template <typename RunnerFactory>
std::vector<std::uint64_t> drive(Heap& heap, RunnerFactory&& make_runner,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> fresh, out, stream;
  std::vector<std::uint64_t> init(4096);
  for (auto& x : init) x = rng.next_below(1u << 26);
  heap.build(init);
  for (int step = 0; step < 300; ++step) {
    fresh.clear();
    const std::size_t n = rng.next_below(2 * heap.node_capacity() + 1);
    for (std::size_t i = 0; i < n; ++i) fresh.push_back(rng.next_below(1u << 26));
    const std::size_t k = rng.next_below(heap.node_capacity() + 1);
    out.clear();
    // Decomposed step with an explicit runner (mirrors step()'s schedule).
    heap.advance_with(1, make_runner(heap));
    heap.root_work_public(fresh, k, out);
    heap.advance_with(0, make_runner(heap));
    stream.insert(stream.end(), out.begin(), out.end());
  }
  return stream;
}

using Fn = std::function<void(std::size_t, Heap::ServiceCtx&)>;

TEST(PipelineParallelism, GroupOrderIsIrrelevant) {
  Heap a(16), b(16), c(16);

  auto in_order = [](Heap& h) {
    return [&h](std::size_t ngroups, const Fn& fn) {
      Heap::ServiceCtx ctx;
      for (std::size_t g = 0; g < ngroups; ++g) fn(g, ctx);
      h.merge_ctx(ctx);
    };
  };
  auto reversed = [](Heap& h) {
    return [&h](std::size_t ngroups, const Fn& fn) {
      Heap::ServiceCtx ctx;
      for (std::size_t g = ngroups; g-- > 0;) fn(g, ctx);
      h.merge_ctx(ctx);
    };
  };
  auto striped_two_ctx = [](Heap& h) {
    return [&h](std::size_t ngroups, const Fn& fn) {
      Heap::ServiceCtx even_ctx, odd_ctx;
      // Interleave two "workers": all even groups, then all odd groups,
      // each with its own context (as the maintenance team does).
      for (std::size_t g = 0; g < ngroups; g += 2) fn(g, even_ctx);
      for (std::size_t g = 1; g < ngroups; g += 2) fn(g, odd_ctx);
      h.merge_ctx(even_ctx);
      h.merge_ctx(odd_ctx);
    };
  };

  const auto sa = drive(a, in_order, 31);
  const auto sb = drive(b, reversed, 31);
  const auto sc = drive(c, striped_two_ctx, 31);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa, sc);
  EXPECT_EQ(a.sorted_contents(), b.sorted_contents());
  EXPECT_EQ(a.sorted_contents(), c.sorted_contents());
}

TEST(PipelineParallelism, ContextsMergeInAnyOrder) {
  // Spawned processes from different contexts are merged serially after the
  // runner; merging order must not affect semantics (only park order).
  Heap a(8), b(8);
  auto forward_merge = [](Heap& h) {
    return [&h](std::size_t ngroups, const Fn& fn) {
      Heap::ServiceCtx c1, c2;
      for (std::size_t g = 0; g < ngroups; ++g) fn(g, g % 2 == 0 ? c1 : c2);
      h.merge_ctx(c1);
      h.merge_ctx(c2);
    };
  };
  auto backward_assign = [](Heap& h) {
    return [&h](std::size_t ngroups, const Fn& fn) {
      Heap::ServiceCtx c1, c2;
      for (std::size_t g = ngroups; g-- > 0;) fn(g, g % 2 == 0 ? c2 : c1);
      h.merge_ctx(c2);
      h.merge_ctx(c1);
    };
  };
  const auto sa = drive(a, forward_merge, 37);
  const auto sb = drive(b, backward_assign, 37);
  EXPECT_EQ(sa, sb);
}

TEST(PipelineParallelism, WidthGrowsWithDepth) {
  // A deep heap under steady cycles has many simultaneously serviceable
  // groups — the parallelism the engine exploits. Verify the counter sees
  // multi-group half-steps.
  Heap heap(8);
  Xoshiro256 rng(41);
  std::vector<std::uint64_t> init(1 << 15);
  for (auto& x : init) x = rng.next_below(1u << 30);
  heap.build(init);
  std::vector<std::uint64_t> fresh(8), out;
  for (int step = 0; step < 200; ++step) {
    for (auto& x : fresh) x = rng.next_below(1u << 30);
    out.clear();
    heap.step(fresh, 8, out);
  }
  EXPECT_GT(heap.pipeline_stats().max_groups, 1u);
}

}  // namespace
}  // namespace ph
