// Tests for the d-ary generalization of the synchronous parallel heap:
// oracle equivalence and invariants for arities 2..8, plus geometry checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

struct Params {
  std::size_t r;
  std::size_t arity;
  std::uint64_t seed;
};

class DaryHeapVsOracle : public ::testing::TestWithParam<Params> {};

TEST_P(DaryHeapVsOracle, RandomOpsMatchSortedOracle) {
  const Params p = GetParam();
  ParallelHeap<std::uint64_t> heap(p.r, std::less<std::uint64_t>{}, p.arity);
  EXPECT_EQ(heap.arity(), p.arity);
  std::vector<std::uint64_t> oracle;
  Xoshiro256 rng(p.seed);

  std::vector<std::uint64_t> batch, got;
  for (int step = 0; step < 300; ++step) {
    if (rng.next_below(2) == 0) {
      batch.clear();
      const std::size_t n = rng.next_below(3 * p.r + 1);
      for (std::size_t i = 0; i < n; ++i) batch.push_back(rng.next_below(1u << 18));
      heap.insert_batch(batch);
      oracle.insert(oracle.end(), batch.begin(), batch.end());
      std::sort(oracle.begin(), oracle.end());
    } else {
      const std::size_t k = rng.next_below(2 * p.r + 1);
      got.clear();
      const std::size_t take = heap.delete_min_batch(k, got);
      const std::size_t want = std::min(k, oracle.size());
      ASSERT_EQ(take, want) << "step " << step;
      ASSERT_TRUE(std::equal(got.begin(), got.end(), oracle.begin()))
          << "step " << step;
      oracle.erase(oracle.begin(), oracle.begin() + static_cast<std::ptrdiff_t>(want));
    }
    std::string why;
    ASSERT_TRUE(heap.check_invariants(&why)) << "step " << step << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AritySweep, DaryHeapVsOracle,
    ::testing::Values(Params{4, 2, 901}, Params{4, 3, 902}, Params{4, 4, 903},
                      Params{4, 8, 904}, Params{16, 3, 905}, Params{16, 4, 906},
                      Params{1, 4, 907}, Params{64, 6, 908}, Params{7, 5, 909}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "r" + std::to_string(info.param.r) + "_d" +
             std::to_string(info.param.arity);
    });

TEST(DaryGeometry, LevelsShrinkWithArity) {
  std::vector<std::uint64_t> items(4096);
  Xoshiro256 rng(3);
  for (auto& x : items) x = rng.next_below(1u << 20);

  ParallelHeap<std::uint64_t> h2(4, std::less<std::uint64_t>{}, 2);
  ParallelHeap<std::uint64_t> h8(4, std::less<std::uint64_t>{}, 8);
  h2.build(items);
  h8.build(items);
  EXPECT_EQ(h2.num_nodes(), h8.num_nodes());
  EXPECT_GT(h2.levels(), h8.levels());
  EXPECT_TRUE(h2.check_invariants());
  EXPECT_TRUE(h8.check_invariants());
}

TEST(DaryGeometry, IdenticalDeletionStreamAcrossArities) {
  // The deletion stream is the sorted order regardless of arity.
  std::vector<std::uint64_t> items(2000);
  Xoshiro256 rng(7);
  for (auto& x : items) x = rng.next_below(1u << 24);
  std::vector<std::uint64_t> want = items;
  std::sort(want.begin(), want.end());

  for (std::size_t d : {2u, 3u, 4u, 8u}) {
    ParallelHeap<std::uint64_t> h(32, std::less<std::uint64_t>{}, d);
    h.build(items);
    std::vector<std::uint64_t> got;
    h.delete_min_batch(items.size(), got);
    EXPECT_EQ(got, want) << "arity " << d;
  }
}

TEST(DaryGeometry, HoldSteadyStateAllArities) {
  for (std::size_t d : {2u, 4u, 6u}) {
    ParallelHeap<std::uint64_t> h(16, std::less<std::uint64_t>{}, d);
    Xoshiro256 rng(11);
    std::vector<std::uint64_t> init(512);
    for (auto& x : init) x = rng.next_below(1u << 20);
    h.build(init);
    std::vector<std::uint64_t> out, fresh;
    for (int c = 0; c < 200; ++c) {
      out.clear();
      h.cycle(fresh, 16, out);
      // Each batch is the sorted global minimum of heap ∪ fresh. (Across
      // batches the stream need not be monotone: small hold increments can
      // legally re-enter below the previous batch's maximum.)
      ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
      if (!fresh.empty() && !out.empty()) {
        ASSERT_LE(out.front(), fresh.back());
      }
      fresh.clear();
      for (auto t : out) fresh.push_back(t + 1 + rng.next_below(1000));
      ASSERT_TRUE(h.check_invariants()) << "arity " << d << " cycle " << c;
    }
  }
}

}  // namespace
}  // namespace ph
