// Tests for the key-range-sharded heap front end (core/sharded_heap.hpp)
// and its DES consumer (sim/sharded_sim.hpp): partitioner properties, the
// K=1 bit-for-bit degeneration, the shard-drain edge cases named by the
// bring-up (empty shards in the merge, boundary duplicates, rebalancing with
// in-flight pipelines), and outcome-exactness of the sharded simulation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sharded_sim.hpp"
#include "testing/op_trace.hpp"
#include "testing/oracle.hpp"
#include "testing/structures.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
using testing::GenConfig;
using testing::OpTrace;
using testing::SortedOracle;

// ------------------------------------------------------------- partitioner

TEST(Partitioner, EveryKeyRoutesToExactlyOneShard) {
  Xoshiro256 rng(101);
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                             std::size_t{8}}) {
    KeyRangePartitioner<U64> part(shards);
    std::vector<U64> sample;
    for (int i = 0; i < 500; ++i) sample.push_back(rng.next_below(1u << 20));
    part.rebalance(sample);
    ASSERT_EQ(part.splits().size(), shards - 1);
    // route() is a total function into [0, shards): exactly one shard per
    // key, including the extremes of the domain.
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(part.route(rng()), shards);
    }
    EXPECT_LT(part.route(0), shards);
    EXPECT_LT(part.route(~U64{0}), shards);
  }
}

TEST(Partitioner, SplitsCoverDomainAndRouteIsMonotone) {
  KeyRangePartitioner<U64> part(4);
  std::vector<U64> sample;
  for (U64 v = 0; v < 4000; ++v) sample.push_back(v * 7);  // distinct keys
  part.rebalance(sample);
  ASSERT_EQ(part.splits().size(), 3u);
  EXPECT_TRUE(std::is_sorted(part.splits().begin(), part.splits().end()));
  // The splits partition [min, max] into contiguous shard-owned ranges:
  // below the sample everything routes to the first shard, at/above the top
  // split to the last, and routing never decreases as keys grow.
  EXPECT_EQ(part.route(0), 0u);
  EXPECT_EQ(part.route(sample.back()), 3u);
  std::size_t prev = 0;
  for (U64 v = 0; v < 40000; v += 13) {
    const std::size_t s = part.route(v);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_EQ(prev, 3u);
}

TEST(Partitioner, BoundaryKeysRouteDeterministicallyRight) {
  // A key equal to a split must always land in the shard *after* the split
  // (route counts splits <= key), no matter how many duplicates arrive.
  KeyRangePartitioner<U64> part(3);
  part.set_splits({100, 200});
  EXPECT_EQ(part.route(99), 0u);
  EXPECT_EQ(part.route(100), 1u);
  EXPECT_EQ(part.route(101), 1u);
  EXPECT_EQ(part.route(200), 2u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(part.route(100), 1u);
}

// ------------------------------------------------------- K=1 degeneration

TEST(ShardedHeap, K1MatchesUnshardedPipelinedBitForBit) {
  // With one shard there is no routing decision and the winning prefix is
  // always a full take (zero putbacks), so every cycle must produce the
  // byte-identical deletion stream the raw pipelined heap produces —
  // including mid-pipeline states and the final drain.
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    GenConfig gen;
    gen.r = 8;
    gen.cycles = 300;
    gen.seed = seed;
    const OpTrace t = generate_trace(gen);

    ShardedHeap<U64> sharded(gen.r, ShardedHeap<U64>::Config{1, 4, 64});
    PipelinedParallelHeap<U64> plain(gen.r);
    std::vector<U64> got_s, got_p;
    for (const auto& op : t.ops) {
      got_s.clear();
      got_p.clear();
      sharded.cycle(op.fresh, std::min(op.k, gen.r), got_s);
      plain.cycle(op.fresh, std::min(op.k, gen.r), got_p);
      ASSERT_EQ(got_s, got_p) << "seed " << seed;
    }
    for (;;) {
      got_s.clear();
      got_p.clear();
      const std::size_t ns = sharded.cycle({}, gen.r, got_s);
      const std::size_t np = plain.cycle({}, gen.r, got_p);
      ASSERT_EQ(got_s, got_p) << "seed " << seed << " (drain)";
      if (ns == 0 && np == 0) break;
    }
    EXPECT_EQ(sharded.sharded_stats().putbacks, 0u);
  }
}

// -------------------------------------------------------- drain edge cases

TEST(ShardedHeap, EmptyShardsParticipateInMerge) {
  // Seed the partition map from a high key range, then feed only keys below
  // every split: shards 1..K-1 drain empty while shard 0 stays hot. Empty
  // shards must contribute empty prefixes (not stall or fabricate), the
  // merge width must collapse to 1, and the stream must stay exact.
  ShardedHeap<U64> q(8, ShardedHeap<U64>::Config{3, 0, 256});
  SortedOracle oracle;
  std::vector<U64> got, want, fresh;

  for (U64 v = 1000; v < 1024; ++v) fresh.push_back(v);  // seeds the splits
  got.clear();
  want.clear();
  q.cycle(fresh, 8, got);
  oracle.cycle(fresh, 8, want);
  ASSERT_EQ(got, want);

  Xoshiro256 rng(7);
  for (int cycle = 0; cycle < 200; ++cycle) {
    fresh.clear();
    const std::size_t n = rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) fresh.push_back(rng.next_below(100));
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    q.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;
  }
  std::string why;
  EXPECT_TRUE(q.check_invariants(&why)) << why;
}

TEST(ShardedHeap, DuplicateKeysStraddlingPartitionBoundary) {
  // Pile duplicates exactly on a split value while neighbors land on both
  // sides. Every copy routes to the right-of-split shard (deterministic),
  // and the merge's shard-index tie-break must keep the global stream equal
  // to the multiset oracle — no copy lost, duplicated, or reordered.
  ShardedHeap<U64> q(4, ShardedHeap<U64>::Config{3, 0, 256});
  std::vector<U64> seedv;
  for (U64 v = 0; v < 300; v += 2) seedv.push_back(v);  // split lands mid-range
  q.build(seedv);
  SortedOracle oracle;
  std::vector<U64> sink;
  oracle.cycle(seedv, 0, sink);

  const U64 boundary = q.partitioner().splits().front();
  Xoshiro256 rng(13);
  std::vector<U64> got, want, fresh;
  for (int cycle = 0; cycle < 150; ++cycle) {
    fresh.clear();
    for (std::size_t i = rng.next_below(4) + 1; i > 0; --i) {
      fresh.push_back(boundary);  // duplicates exactly on the split
      fresh.push_back(boundary > 0 ? boundary - 1 : 0);
      fresh.push_back(boundary + 1);
    }
    const std::size_t k = rng.next_below(5);
    got.clear();
    want.clear();
    q.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;
  }
  // Full drain: total content must be the exact multiset the oracle holds.
  for (;;) {
    got.clear();
    want.clear();
    const std::size_t nq = q.cycle({}, 4, got);
    const std::size_t no = oracle.cycle({}, 4, want);
    ASSERT_EQ(got, want);
    if (nq == 0 && no == 0) break;
  }
}

TEST(ShardedHeap, RebalanceWhileCycleInFlight) {
  // Re-estimating the partition map every single cycle means the map moves
  // while older items — routed under previous maps — are still inside shard
  // pipelines (in-flight update processes). Shard contents then overlap in
  // key range, which the merge must tolerate: it never assumes disjointness.
  ShardedHeap<U64> q(8, ShardedHeap<U64>::Config{4, 1, 128});
  SortedOracle oracle;
  Xoshiro256 rng(29);
  std::vector<U64> got, want, fresh;
  bool saw_inflight_rebalance = false;
  std::uint64_t last_rebalances = 0;

  for (int cycle = 0; cycle < 400; ++cycle) {
    fresh.clear();
    // Drifting key distribution so successive maps genuinely differ.
    const U64 base = static_cast<U64>(cycle) * 50;
    for (std::size_t i = rng.next_below(12); i > 0; --i) {
      fresh.push_back(base + rng.next_below(2000));
    }
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    q.cycle(fresh, k, got);
    oracle.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "cycle " << cycle;

    const auto& st = q.sharded_stats();
    if (st.rebalances > last_rebalances) {
      last_rebalances = st.rebalances;
      for (std::size_t s = 0; s < q.num_shards(); ++s) {
        if (q.shard(s).inflight() > 0) saw_inflight_rebalance = true;
      }
    }
  }
  EXPECT_GT(q.sharded_stats().rebalances, 0u);
  EXPECT_TRUE(saw_inflight_rebalance)
      << "test never hit the rebalance-with-inflight-pipeline condition";
  std::string why;
  EXPECT_TRUE(q.check_invariants(&why)) << why;

  got.clear();
  want.clear();
  for (;;) {
    got.clear();
    want.clear();
    const std::size_t nq = q.cycle({}, 8, got);
    const std::size_t no = oracle.cycle({}, 8, want);
    ASSERT_EQ(got, want);
    if (nq == 0 && no == 0) break;
  }
}

// ------------------------------------------------------------- harness tie

TEST(ShardedHeap, DifferentialHarnessVerifiesSharded) {
  // The registry entry drives a 3-shard heap (rebalancing every 16 cycles)
  // through the full differential runner — adversarial modes, invariant
  // strides, final drain.
  for (std::uint64_t seed : {5u, 23u}) {
    GenConfig gen;
    gen.r = 8;
    gen.cycles = 300;
    gen.seed = seed;
    OpTrace t = generate_trace(gen);
    t.structure = "sharded_heap";
    const auto f = testing::run_trace(t);
    EXPECT_FALSE(f.failed) << f.message;
  }
}

// ------------------------------------------------------------------- DES

TEST(ShardedHeap, ReleaseAdoptHandoffConservesAndStaysExact) {
  // The ownership seam an external supervisor drives: release a shard (its
  // items come back to the caller, its key range redistributes), keep
  // cycling on the survivors, then adopt it back with its items plus what
  // the "other domain" did to them — the stream must stay exact throughout.
  ShardedHeap<U64>::Config cfg;
  cfg.shards = 3;
  cfg.rebalance_interval = 8;
  ShardedHeap<U64> q(8, cfg);
  std::multiset<U64> expected;
  std::vector<U64> items;
  for (U64 v = 0; v < 96; ++v) items.push_back((v * 53) % 257);
  q.build(items);
  expected.insert(items.begin(), items.end());

  const std::vector<U64> handed = q.release_shard(1);
  EXPECT_FALSE(q.shard_active(1));
  EXPECT_EQ(q.active_shards(), 2u);
  EXPECT_TRUE(std::is_sorted(handed.begin(), handed.end()));
  EXPECT_EQ(q.size() + handed.size(), 96u);

  // Survivors keep cycling, exact against an oracle seeded with their share
  // (sorted_contents copies — the heap keeps its items).
  SortedOracle survivors;
  {
    std::vector<U64> sink;
    const std::vector<U64> rest = q.sorted_contents();
    survivors.cycle(std::span<const U64>(rest), 0, sink);
  }
  std::vector<U64> got, want;
  for (std::size_t i = 0; i < 6; ++i) {
    const U64 fresh[] = {static_cast<U64>(i * 31 % 100),
                         static_cast<U64>(i * 71 % 100)};
    got.clear();
    want.clear();
    q.cycle(std::span<const U64>(fresh, 2), 4, got);
    survivors.cycle(std::span<const U64>(fresh, 2), 4, want);
    ASSERT_EQ(got, want) << "survivor cycle " << i;
    for (const U64 v : fresh) expected.insert(v);
    for (const U64 v : got) {
      const auto it = expected.find(v);
      ASSERT_NE(it, expected.end());
      expected.erase(it);
    }
  }

  q.adopt_shard(1, std::span<const U64>(handed));
  EXPECT_TRUE(q.shard_active(1));
  EXPECT_EQ(q.active_shards(), 3u);
  std::string why;
  EXPECT_TRUE(q.check_invariants(&why)) << why;

  // Conservation end to end: the full drain equals the tracked multiset.
  std::vector<U64> drained;
  for (int guard = 0; guard < 1 << 10; ++guard) {
    got.clear();
    if (q.cycle({}, 8, got) == 0) break;
    drained.insert(drained.end(), got.begin(), got.end());
  }
  EXPECT_TRUE(q.empty());
  const std::vector<U64> want_all(expected.begin(), expected.end());
  EXPECT_EQ(drained, want_all);
}

TEST(ShardedSim, MatchesSerialReferenceAcrossShardCounts) {
  const sim::Topology topo = sim::make_torus(8, 8);
  sim::ModelConfig mc;
  mc.seed = 5;
  const sim::Model model(topo, mc);
  const double end_time = 60.0;
  const sim::SimResult want = sim::run_serial_sim(model, end_time);
  ASSERT_GT(want.processed, 0u);

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    sim::ShardedSimConfig cfg;
    cfg.shards = shards;
    cfg.node_capacity = 32;
    cfg.batch = 32;
    const sim::ShardedSimResult got = sim::run_sharded_sim(model, end_time, cfg);
    EXPECT_TRUE(got.sim.same_outcome(want))
        << shards << " shards: processed " << got.sim.processed << " vs "
        << want.processed;
    if (shards > 1) {
      // The run must actually have exercised the sharded path.
      EXPECT_GT(got.shard.routed, 0u);
      EXPECT_GT(got.shard.avg_merge_width(), 0.0);
    }
  }
}

}  // namespace
}  // namespace ph
