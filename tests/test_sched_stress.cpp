// TSan-targeted stress of the threading substrate: ThreadTeam begin/wait
// re-entry and SenseBarrier immediate reuse, plus engine determinism under
// the schedule perturbation hooks. scripts/check.sh runs these under thread
// sanitizer (and under the tsan-fuzz preset, where sched_fuzz_enable arms
// real perturbations; in other builds it is an inert stub and the tests
// still exercise the plain schedules).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "testing/sched_fuzz.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ph {
namespace {

class SchedStressTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::sched_fuzz_enable(/*seed=*/0x5eed); }
  void TearDown() override { testing::sched_fuzz_disable(); }
};

TEST_F(SchedStressTest, ThreadTeamBeginWaitReentry) {
  // Tight begin()/wait() re-entry: the next phase's dispatch races with the
  // previous phase's completion bookkeeping if the team's epoch/pending
  // protocol is wrong. Every phase must run exactly once per member.
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 3000;
  ThreadTeam team(kThreads);
  std::atomic<std::uint64_t> total{0};
  for (int p = 0; p < kPhases; ++p) {
    std::function<void(unsigned)> fn = [&](unsigned) {
      total.fetch_add(1, std::memory_order_relaxed);
    };
    team.begin(fn);
    team.wait();
  }
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kThreads) * kPhases);
}

TEST_F(SchedStressTest, ThreadTeamRunFromDestructorRace) {
  // Construct/run/destroy in a loop: teardown must not race a just-finished
  // phase (the historical shape of lost-wakeup bugs in pooled teams).
  for (int iter = 0; iter < 50; ++iter) {
    ThreadTeam team(3);
    std::atomic<int> n{0};
    team.run([&](unsigned) { n.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(n.load(), 3);
  }
}

TEST_F(SchedStressTest, SenseBarrierImmediateReuse) {
  // Back-to-back arrive_and_wait with no work in between: a thread can hit
  // the barrier's next episode while stragglers are still leaving the
  // previous one, so sense reversal must isolate consecutive episodes.
  constexpr unsigned kThreads = 4;
  constexpr int kEpisodes = 5000;
  SenseBarrier barrier(kThreads);
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      bool sense = false;
      for (int e = 0; e < kEpisodes; ++e) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait(sense);
        // All kThreads arrivals of this episode must be visible; with a
        // broken barrier a fast thread reads a stale count.
        const std::uint64_t seen = arrivals.load(std::memory_order_relaxed);
        if (seen < static_cast<std::uint64_t>(e + 1) * kThreads) torn = true;
        barrier.arrive_and_wait(sense);  // immediate reuse, zero work between
      }
    });
  }
  for (auto& th : ts) th.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(barrier.crossings(), static_cast<std::uint64_t>(kEpisodes) * 2);
}

// Value-deterministic hold think (same shape as test_engine.cpp's).
void hold_think(std::span<const std::uint64_t> mine, std::vector<std::uint64_t>& out) {
  for (std::uint64_t v : mine) out.push_back(v + 1 + (v * 2654435761u) % 1000);
}

TEST_F(SchedStressTest, EngineDeterministicUnderPerturbation) {
  // The engine's processed multiset must not depend on the schedule — with
  // the perturbation hooks armed (tsan-fuzz preset) this explores
  // interleavings the quiet schedule never produces; elsewhere it pins the
  // plain-schedule result.
  std::vector<std::vector<std::uint64_t>> results;
  for (const std::uint64_t fuzz_seed : {1ull, 2ull, 3ull}) {
    testing::sched_fuzz_enable(fuzz_seed, /*yield_permille=*/350);
    EngineConfig cfg;
    cfg.node_capacity = 16;
    cfg.think_threads = 2;
    cfg.maintenance_threads = 2;
    ParallelHeapEngine<std::uint64_t> eng(cfg);
    Xoshiro256 rng(9);
    std::vector<std::uint64_t> init(400);
    for (auto& x : init) x = rng.next_below(1u << 16);
    eng.seed(init);
    std::mutex mu;
    std::vector<std::uint64_t> seen;
    eng.run(
        [&](unsigned, std::span<const std::uint64_t> mine,
            std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
          {
            std::lock_guard lk(mu);
            seen.insert(seen.end(), mine.begin(), mine.end());
          }
          hold_think(mine, out);
        },
        /*max_items=*/4000);
    std::sort(seen.begin(), seen.end());
    results.push_back(std::move(seen));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "fuzz seed " << i + 1;
  }
  if constexpr (testing::kSchedFuzz) {
    // The hooks must actually have fired somewhere above.
    EXPECT_GT(testing::sched_fuzz_perturbations(), 0u);
  }
}

}  // namespace
}  // namespace ph
