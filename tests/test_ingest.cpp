// Tests for the ingestion tier (src/ingest/ingest_tier.hpp): strict-mode
// bit-exactness against direct insertion at every producer count, the
// bounded-staleness admission contract, concurrent staging losslessness,
// flush-path fault conservation, empty-buffer edges, the differential
// registry structures, and the exported gauges.
#include "ingest/ingest_tier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "obs/metrics_registry.hpp"
#include "robustness/failpoint.hpp"
#include "testing/differential.hpp"
#include "testing/op_trace.hpp"
#include "testing/structures.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
using Tier = ingest::IngestTier<PipelinedParallelHeap<U64>>;

std::vector<U64> random_items(std::size_t n, U64 seed, U64 bound = 1u << 20) {
  Xoshiro256 rng(seed);
  std::vector<U64> v(n);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

Tier make_tier(std::size_t r, ingest::IngestConfig ic) {
  return Tier(PipelinedParallelHeap<U64>(r), ic);
}

// ------------------------------------------------- strict-mode exactness

TEST(IngestStrict, BitExactVsDirectInsertionAtEveryProducerCount) {
  // The headline claim: with staleness 0, the deletion stream must be
  // IDENTICAL to feeding the same per-cycle batches directly into the inner
  // heap — at every producer count, with real threads staging concurrently.
  constexpr std::size_t r = 32;
  for (const unsigned producers : {1u, 2u, 4u, 8u}) {
    ingest::IngestConfig ic;
    ic.producers = producers;
    Tier tier = make_tier(r, ic);
    PipelinedParallelHeap<U64> direct(r);

    Xoshiro256 rng(100 + producers);
    ThreadTeam team(producers, /*pin=*/false, "test-prod");
    std::vector<U64> got, want;
    for (std::size_t c = 0; c < 60; ++c) {
      std::vector<U64> batch(r);
      for (auto& v : batch) v = rng.next_below(1u << 16);
      team.run([&](unsigned tid) {
        const std::size_t per = (batch.size() + producers - 1) / producers;
        const std::size_t lo = std::min<std::size_t>(tid * per, batch.size());
        const std::size_t hi = std::min<std::size_t>(lo + per, batch.size());
        tier.stage(tid, std::span<const U64>(batch).subspan(lo, hi - lo));
      });
      got.clear();
      want.clear();
      tier.cycle({}, r / 2, got);
      direct.cycle(batch, r / 2, want);
      ASSERT_EQ(got, want) << "P=" << producers << " cycle " << c;
    }
    for (int guard = 0; guard < 256; ++guard) {
      got.clear();
      want.clear();
      const std::size_t nq = tier.cycle({}, r, got);
      const std::size_t no = direct.cycle({}, r, want);
      ASSERT_EQ(got, want) << "P=" << producers << " drain";
      if (nq == 0 && no == 0) break;
    }
    EXPECT_TRUE(tier.empty());
    EXPECT_EQ(tier.pending_runs(), 0u);
  }
}

TEST(IngestStrict, MixedStagedAndDirectFreshItemsStayExact) {
  // cycle(fresh, ...) composes direct fresh items with the admitted staged
  // runs; the union multiset must drive the same stream as all-direct.
  constexpr std::size_t r = 16;
  ingest::IngestConfig ic;
  ic.producers = 3;
  Tier tier = make_tier(r, ic);
  PipelinedParallelHeap<U64> direct(r);
  Xoshiro256 rng(7);
  std::vector<U64> got, want;
  for (std::size_t c = 0; c < 80; ++c) {
    const std::vector<U64> staged = random_items(5, 1000 + c);
    const std::vector<U64> fresh = random_items(3, 2000 + c);
    for (std::size_t i = 0; i < staged.size(); ++i) tier.stage(i, staged[i]);
    std::vector<U64> all(staged);
    all.insert(all.end(), fresh.begin(), fresh.end());
    got.clear();
    want.clear();
    tier.cycle(fresh, r / 2, got);
    direct.cycle(all, r / 2, want);
    ASSERT_EQ(got, want) << "cycle " << c;
  }
}

// ------------------------------------------------------ edge conditions

TEST(IngestEdges, EmptyBufferDrainIsTransparent) {
  // Nothing staged: the tier is a pass-through; flushes still tick (the
  // sweep ran) but no runs form and nothing is admitted.
  constexpr std::size_t r = 8;
  Tier tier = make_tier(r, {});
  std::vector<U64> out;
  tier.cycle({}, r, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tier.empty());
  const auto& st = tier.ingest_stats();
  EXPECT_EQ(st.flushes, 1u);
  EXPECT_EQ(st.runs, 0u);
  EXPECT_EQ(st.admitted_items, 0u);

  const std::vector<U64> items = random_items(20, 3);
  for (std::size_t i = 0; i < items.size(); ++i) tier.stage(i % 4, items[i]);
  out.clear();
  tier.cycle({}, 0, out);  // insert-only cycle: staged items all admitted
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tier.ingest_stats().admitted_items, items.size());
  EXPECT_EQ(tier.size(), items.size());
  std::string why;
  EXPECT_TRUE(tier.check_invariants(&why)) << why;
}

TEST(IngestEdges, ConcurrentStagingIsLossless) {
  // 8 real threads hammer stage() concurrently (hashing onto 4 slots, so
  // slots are contended); every item must come back out exactly once.
  constexpr std::size_t r = 64;
  ingest::IngestConfig ic;
  ic.producers = 4;
  Tier tier = make_tier(r, ic);
  constexpr unsigned kThreads = 8;
  constexpr std::size_t kPer = 500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(900 + t);
      for (std::size_t i = 0; i < kPer; ++i) {
        tier.stage(t, rng.next_below(1u << 18));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tier.size(), kThreads * kPer);

  std::vector<U64> drained, out;
  for (int guard = 0; guard < 1 << 10; ++guard) {
    out.clear();
    if (tier.cycle({}, r, out) == 0 && tier.empty()) break;
    drained.insert(drained.end(), out.begin(), out.end());
  }
  std::vector<U64> expect;
  for (unsigned t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(900 + t);
    for (std::size_t i = 0; i < kPer; ++i) expect.push_back(rng.next_below(1u << 18));
  }
  std::sort(expect.begin(), expect.end());
  // Strict admission + exact inner heap → the drain IS sorted already, but
  // only the multiset is the contract here.
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, expect);
}

// --------------------------------------------------- bounded staleness

TEST(IngestRelaxed, RunsLagAtMostStalenessCycles) {
  constexpr std::size_t r = 8;
  ingest::IngestConfig ic;
  ic.producers = 2;
  ic.staleness = 3;
  Tier tier = make_tier(r, ic);

  // Stage once across both producer slots; with no admit_min_items pressure
  // the flush yields one run per nonempty slot (both born the same cycle),
  // and they must sit pending until their lag reaches S — never later.
  const std::vector<U64> items = random_items(6, 11);
  for (std::size_t i = 0; i < items.size(); ++i) tier.stage(i, items[i]);
  std::vector<U64> out;
  tier.cycle({}, 0, out);  // flush cycle: both runs born here (lag 0)
  EXPECT_EQ(tier.pending_runs(), 2u);
  tier.cycle({}, 0, out);  // lag 1
  tier.cycle({}, 0, out);  // lag 2
  EXPECT_EQ(tier.pending_runs(), 2u);
  std::string why;
  EXPECT_TRUE(tier.check_invariants(&why)) << why;
  tier.cycle({}, 0, out);  // lag 3 == S: must be admitted now
  EXPECT_EQ(tier.pending_runs(), 0u);
  EXPECT_EQ(tier.ingest_stats().admitted_items, items.size());
  EXPECT_LE(tier.ingest_stats().max_lag, 3u);
  EXPECT_TRUE(tier.check_invariants(&why)) << why;
}

TEST(IngestRelaxed, BacklogPressureAdmitsEarly) {
  constexpr std::size_t r = 8;
  ingest::IngestConfig ic;
  ic.producers = 2;
  ic.staleness = 100;  // lag alone would hold runs for ages
  ic.admit_min_items = 10;
  Tier tier = make_tier(r, ic);
  std::vector<U64> out;
  for (std::size_t i = 0; i < 4; ++i) tier.stage(0, U64{i});
  tier.cycle({}, 0, out);
  EXPECT_EQ(tier.pending_items(), 4u);  // below the watermark: pending
  for (std::size_t i = 0; i < 8; ++i) tier.stage(1, U64{100 + i});
  tier.cycle({}, 0, out);  // 12 pending >= 10: everything admitted
  EXPECT_EQ(tier.pending_items(), 0u);
  EXPECT_EQ(tier.ingest_stats().admitted_items, 12u);
}

// ------------------------------------------------- registry structures

TEST(IngestRegistry, DifferentialStructuresPass) {
  for (const char* name :
       {"ingest_pipelined", "ingest_sharded_strict", "ingest_sharded_relaxed"}) {
    testing::GenConfig gen;
    gen.r = 8;
    gen.cycles = 200;
    gen.key_bound = 1u << 14;
    gen.seed = 77;
    testing::OpTrace trace = testing::generate_trace(gen);
    trace.structure = name;
    const testing::DiffFailure f = testing::run_trace(trace);
    EXPECT_FALSE(f.failed) << name << ": " << f.message;
  }
}

TEST(IngestRegistry, StructuresAreRegisteredByDefault) {
  const auto& names = testing::default_structures();
  for (const char* name :
       {"ingest_pipelined", "ingest_sharded_strict", "ingest_sharded_relaxed"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  }
}

// ------------------------------------------------------- fault injection

TEST(IngestFaults, ProducerCrashMidFlushConservesEveryItem) {
  // kIngestFlush fires between slot drains: the sweep aborts and the
  // in-flight buffer is restaged. Under repeated injected crashes the tier
  // may lag admission but must never lose or duplicate an item — checked by
  // the bounded-lag conservation harness (the strict stream lawfully slips
  // a cycle when a flush faults, so stream equality is the wrong referee).
  namespace rb = robustness;
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  struct Disarm {
    ~Disarm() { robustness::disarm_all(); }
  } guard;

  testing::GenConfig gen;
  gen.r = 8;
  gen.cycles = 250;
  gen.key_bound = 1u << 14;
  gen.seed = 99;
  const testing::OpTrace trace = testing::generate_trace(gen);
  ingest::IngestConfig ic;
  ic.producers = 4;
  testing::IngestTierAdapter<PipelinedParallelHeap<U64>> q(
      PipelinedParallelHeap<U64>(8), ic);
  rb::arm(rb::FailSite::kIngestFlush,
          rb::FireSpec{/*nth=*/2, /*period=*/4, /*max_fires=*/30, /*stall_us=*/0});
  testing::DiffOptions opt;
  opt.relaxed = true;
  opt.bounded_lag = true;
  const testing::DiffFailure f = testing::run_differential(q, trace, opt);
  EXPECT_FALSE(f.failed) << f.message;
  const rb::SiteStats st = rb::stats(rb::FailSite::kIngestFlush);
  EXPECT_GT(st.fires, 0u);
  EXPECT_EQ(st.recoveries, st.fires);  // every abort restaged its buffer
}

TEST(IngestFaults, FlushFaultRestagesWithoutAdmitting) {
  // White-box edge: the very first flush faults on the first nonempty slot;
  // nothing may be admitted that cycle, and the items must still be counted
  // in size() (restaged, not dropped).
  namespace rb = robustness;
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  struct Disarm {
    ~Disarm() { robustness::disarm_all(); }
  } guard;

  Tier tier = make_tier(8, {});
  for (U64 v : {U64{5}, U64{1}, U64{9}}) tier.stage(0, v);
  rb::arm(rb::FailSite::kIngestFlush,
          rb::FireSpec{/*nth=*/1, /*period=*/0, /*max_fires=*/1, /*stall_us=*/0});
  std::vector<U64> out;
  tier.cycle({}, 8, out);
  EXPECT_TRUE(out.empty());  // the faulted cycle admitted nothing
  EXPECT_EQ(tier.ingest_stats().flush_faults, 1u);
  EXPECT_EQ(tier.size(), 3u);
  out.clear();
  tier.cycle({}, 8, out);  // site exhausted: normal flush + admit
  EXPECT_EQ(out, (std::vector<U64>{1, 5, 9}));
}

// ----------------------------------------------------------- obs gauges

TEST(IngestGauges, StagedDepthAndFlushLatencyAreExported) {
  constexpr std::size_t r = 16;
  ingest::IngestConfig ic;
  ic.producers = 2;
  Tier tier = make_tier(r, ic);
  tier.register_gauges("ingest-test");

  auto sample = [&] {
    std::map<std::string, double> out;
    for (const auto& g : obs::MetricsRegistry::instance().snapshot().gauges) {
      std::string key = g.desc.name;
      for (const auto& [k, v] : g.desc.labels) key += "|" + k + "=" + v;
      out[key] = g.value;
    }
    return out;
  };

  for (std::size_t i = 0; i < 24; ++i) tier.stage(i % 2, U64{i});
  const auto s0 = sample();
  ASSERT_TRUE(s0.count("ingest_staged_depth|heap=ingest-test"));
  EXPECT_DOUBLE_EQ(s0.at("ingest_staged_depth|heap=ingest-test"), 24.0);
  EXPECT_DOUBLE_EQ(s0.at("ingest_flushes|heap=ingest-test"), 0.0);

  std::vector<U64> out;
  tier.cycle({}, 4, out);
  const auto s1 = sample();
  EXPECT_DOUBLE_EQ(s1.at("ingest_staged_depth|heap=ingest-test"), 0.0);
  EXPECT_DOUBLE_EQ(s1.at("ingest_flushes|heap=ingest-test"), 1.0);
  EXPECT_DOUBLE_EQ(s1.at("ingest_admitted_items|heap=ingest-test"), 24.0);
  EXPECT_GT(s1.at("ingest_max_run|heap=ingest-test"), 0.0);
}

}  // namespace
}  // namespace ph
