// Property-based differential tests: the ParallelHeap must behave exactly
// like a sorted-multiset oracle under arbitrary interleavings of batch
// inserts, batch deletes, and combined cycles, for a sweep of node
// capacities. These tests are the correctness anchor for the whole library
// (DESIGN.md §5).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

/// Reference implementation: a sorted vector used as a multiset oracle.
class Oracle {
 public:
  void insert_batch(std::span<const std::uint64_t> items) {
    data_.insert(data_.end(), items.begin(), items.end());
    std::sort(data_.begin(), data_.end());
  }

  std::size_t delete_min_batch(std::size_t k, std::vector<std::uint64_t>& out) {
    const std::size_t take = std::min(k, data_.size());
    out.insert(out.end(), data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(take));
    data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(take));
    return take;
  }

  std::size_t size() const { return data_.size(); }
  const std::vector<std::uint64_t>& contents() const { return data_; }

 private:
  std::vector<std::uint64_t> data_;
};

struct Params {
  std::size_t r;
  std::uint64_t key_bound;  // small bound → many duplicates
  std::uint64_t seed;
};

class HeapVsOracle : public ::testing::TestWithParam<Params> {};

TEST_P(HeapVsOracle, RandomOpSequence) {
  const Params p = GetParam();
  ParallelHeap<std::uint64_t> heap(p.r);
  Oracle oracle;
  Xoshiro256 rng(p.seed);

  std::vector<std::uint64_t> batch, got, want;
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t action = rng.next_below(3);
    if (action == 0) {
      // Batch insert of random size (biased to sometimes exceed r).
      batch.clear();
      const std::size_t n = rng.next_below(3 * p.r + 2);
      for (std::size_t i = 0; i < n; ++i) batch.push_back(rng.next_below(p.key_bound));
      heap.insert_batch(batch);
      oracle.insert_batch(batch);
    } else if (action == 1) {
      const std::size_t k = rng.next_below(2 * p.r + 2);
      got.clear();
      want.clear();
      const std::size_t g = heap.delete_min_batch(k, got);
      const std::size_t w = oracle.delete_min_batch(k, want);
      ASSERT_EQ(g, w) << "step " << step;
      ASSERT_EQ(got, want) << "step " << step;
    } else {
      // Combined cycle: delete k smallest of (heap ∪ fresh).
      batch.clear();
      const std::size_t n = rng.next_below(2 * p.r + 1);
      for (std::size_t i = 0; i < n; ++i) batch.push_back(rng.next_below(p.key_bound));
      const std::size_t k = rng.next_below(p.r + 1);
      got.clear();
      want.clear();
      heap.cycle(batch, k, got);
      oracle.insert_batch(batch);
      oracle.delete_min_batch(k, want);
      ASSERT_EQ(got, want) << "step " << step;
    }
    ASSERT_EQ(heap.size(), oracle.size()) << "step " << step;
    std::string why;
    ASSERT_TRUE(heap.check_invariants(&why)) << "step " << step << ": " << why;
  }
  // Full drain must match exactly.
  got.clear();
  want.clear();
  heap.delete_min_batch(heap.size(), got);
  oracle.delete_min_batch(oracle.size(), want);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    NodeCapacitySweep, HeapVsOracle,
    ::testing::Values(Params{1, 1u << 16, 101}, Params{2, 1u << 16, 102},
                      Params{3, 1u << 16, 103}, Params{4, 1u << 16, 104},
                      Params{7, 1u << 16, 105}, Params{8, 1u << 16, 106},
                      Params{16, 1u << 16, 107}, Params{64, 1u << 16, 108},
                      Params{257, 1u << 16, 109},
                      // Heavy duplicates: 8 distinct keys.
                      Params{4, 8, 110}, Params{16, 8, 111}, Params{64, 2, 112},
                      // All-equal keys.
                      Params{8, 1, 113}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "r" + std::to_string(info.param.r) + "_keys" +
             std::to_string(info.param.key_bound) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(HeapVsOracleAdversarial, SawtoothGrowDrain) {
  // Grow to N, drain to 0, repeatedly — exercises the substitute path and
  // the tail arithmetic at every size.
  ParallelHeap<std::uint64_t> heap(8);
  Oracle oracle;
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> batch, got, want;
  for (int round = 0; round < 10; ++round) {
    batch.clear();
    for (int i = 0; i < 300; ++i) batch.push_back(rng.next_below(1u << 30));
    heap.insert_batch(batch);
    oracle.insert_batch(batch);
    while (heap.size() > 0) {
      got.clear();
      want.clear();
      const std::size_t k = 1 + rng.next_below(13);
      heap.delete_min_batch(k, got);
      oracle.delete_min_batch(k, want);
      ASSERT_EQ(got, want);
      ASSERT_TRUE(heap.check_invariants());
    }
  }
}

TEST(HeapVsOracleAdversarial, AlwaysNewMinimum) {
  // Each cycle's fresh items are all smaller than everything in the heap:
  // deletions should be satisfied straight from the fresh batch while the
  // heap content keeps sinking.
  ParallelHeap<std::int64_t> heap(16);
  std::vector<std::int64_t> out;
  std::int64_t next = 0;
  heap.insert_batch(std::vector<std::int64_t>{0, 0, 0, 0});
  for (int c = 0; c < 200; ++c) {
    std::vector<std::int64_t> fresh(16);
    for (auto& x : fresh) x = --next;  // strictly decreasing
    out.clear();
    heap.cycle(fresh, 8, out);
    ASSERT_EQ(out.size(), 8u);
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
    ASSERT_TRUE(heap.check_invariants());
  }
}

TEST(HeapVsOracleAdversarial, AlwaysNewMaximum) {
  ParallelHeap<std::uint64_t> heap(16);
  Oracle oracle;
  std::vector<std::uint64_t> got, want;
  std::uint64_t next = 0;
  for (int c = 0; c < 200; ++c) {
    std::vector<std::uint64_t> fresh(16);
    for (auto& x : fresh) x = ++next;  // strictly increasing
    got.clear();
    want.clear();
    heap.cycle(fresh, 8, got);
    oracle.insert_batch(fresh);
    oracle.delete_min_batch(8, want);
    ASSERT_EQ(got, want);
    ASSERT_TRUE(heap.check_invariants());
  }
}

TEST(HeapVsOracleAdversarial, SingleItemChurn) {
  // Scalar push/pop interface must match the oracle one item at a time.
  ParallelHeap<std::uint64_t> heap(8);
  Oracle oracle;
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> want;
  for (int step = 0; step < 2000; ++step) {
    if (heap.size() == 0 || rng.next_below(2) == 0) {
      const std::uint64_t v = rng.next_below(1000);
      heap.push(v);
      oracle.insert_batch(std::vector<std::uint64_t>{v});
    } else {
      want.clear();
      oracle.delete_min_batch(1, want);
      ASSERT_EQ(heap.pop(), want.front());
    }
  }
}

TEST(HeapVsOracleAdversarial, CycleEqualsInsertThenDelete) {
  // cycle(new, k) must equal insert_batch(new) followed by
  // delete_min_batch(k) on an identical twin heap.
  Xoshiro256 rng(88);
  ParallelHeap<std::uint64_t> a(8), b(8);
  std::vector<std::uint64_t> got_a, got_b;
  for (int step = 0; step < 200; ++step) {
    std::vector<std::uint64_t> fresh(rng.next_below(20));
    for (auto& x : fresh) x = rng.next_below(1u << 20);
    const std::size_t k = rng.next_below(9);
    got_a.clear();
    got_b.clear();
    a.cycle(fresh, k, got_a);
    b.insert_batch(fresh);
    b.delete_min_batch(std::min(k, b.size()), got_b);
    ASSERT_EQ(got_a, got_b) << "step " << step;
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.sorted_contents(), b.sorted_contents());
  }
}

}  // namespace
}  // namespace ph
