// Tests for the threading/instrumentation substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <thread>
#include <vector>

#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ph {
namespace {

TEST(Spinlock, MutualExclusionCounts) {
  Spinlock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SenseBarrier, SynchronizesPhases) {
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 100;
  SenseBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::vector<int> observed(kThreads, 0);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      bool sense = false;
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait(sense);
        // After the barrier, all kThreads increments of this phase are done.
        const int seen = phase_counter.load(std::memory_order_relaxed);
        EXPECT_GE(seen, (p + 1) * static_cast<int>(kThreads));
        barrier.arrive_and_wait(sense);
        observed[t] = p;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(barrier.crossings(), 2u * kPhases);
  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(observed[t], kPhases - 1);
}

TEST(ThreadTeam, RunsOnAllMembers) {
  ThreadTeam team(4);
  std::vector<Padded<int>> hits(4);
  team.run([&](unsigned tid) { hits[tid].value = static_cast<int>(tid) + 1; });
  for (unsigned t = 0; t < 4; ++t) EXPECT_EQ(hits[t].value, static_cast<int>(t) + 1);
}

TEST(ThreadTeam, RepeatedPhases) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int p = 0; p < 200; ++p) {
    team.run([&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadTeam, ParallelForCoversRange) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(1000);
  team.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, ParallelForEmptyRange) {
  ThreadTeam team(2);
  team.parallel_for(5, 5, [&](std::size_t) { FAIL() << "must not be called"; });
}

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsDiffer) {
  Xoshiro256 root(5);
  Xoshiro256 a = root.split(0);
  Xoshiro256 b = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int b = 0; b < 10; ++b) EXPECT_GT(seen[b], 500);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Xoshiro256 rng(31);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(55);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Stats, Pow2HistogramBuckets) {
  Pow2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1000);
  EXPECT_EQ(h.total(), 6u);
  const auto& b = h.buckets();
  ASSERT_GE(b.size(), 11u);
  EXPECT_EQ(b[0], 2u);  // 0 and 1
  EXPECT_EQ(b[1], 1u);  // 2
  EXPECT_EQ(b[2], 2u);  // 3..4
  EXPECT_EQ(b[10], 1u); // 513..1024
}

TEST(Stats, SummaryTracksMinMaxMean) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SummaryStddevMatchesDirectFormula) {
  Summary s;
  const double xs[] = {3.0, 7.0, 7.0, 19.0};
  double mean = 0;
  for (double x : xs) mean += x / 4.0;
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean) / 3.0;  // Bessel
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(var));
  Summary single;
  single.add(5.0);
  EXPECT_DOUBLE_EQ(single.stddev(), 0.0);
}

TEST(Stats, SummaryWelfordIsStableAtLargeOffset) {
  // Naive sum-of-squares cancels catastrophically here; Welford must not.
  Summary s;
  const double base = 1e9;
  for (double d : {0.0, 1.0, 2.0}) s.add(base + d);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-6);
}

TEST(Stats, SummaryRejectsNaN) {
  Summary s;
  s.add(2.0);
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(4.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.nan_count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
  // NaN first must not poison the aggregates either.
  Summary t;
  t.add(std::numeric_limits<double>::quiet_NaN());
  t.add(1.0);
  EXPECT_EQ(t.count(), 1u);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 1.0);
}

TEST(PhaseTimer, UnmatchedStopIsNoOp) {
  // Regression: stop() without a matching start() used to fold in time
  // measured from the timer's construction (an arbitrary origin).
  PhaseTimer t;
  t.stop();
  EXPECT_EQ(t.total_seconds(), 0.0);

  t.start();
  t.stop();
  const double after_episode = t.total_seconds();
  EXPECT_GE(after_episode, 0.0);
  t.stop();  // second stop of the same episode: must not accumulate again
  EXPECT_EQ(t.total_seconds(), after_episode);

  t.clear();
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.stop();  // clear() disarms too
  EXPECT_EQ(t.total_seconds(), 0.0);
}

TEST(PhaseTimer, AccumulatesAcrossEpisodes) {
  PhaseTimer t;
  t.start();
  t.stop();
  const double one = t.total_seconds();
  t.start();
  t.stop();
  EXPECT_GE(t.total_seconds(), one);
}

TEST(Stats, RegistryAccumulates) {
  StatRegistry reg;
  reg.add("x", 3);
  reg.add("x", 4);
  reg.add("y", 1);
  EXPECT_EQ(reg.get("x"), 7u);
  EXPECT_EQ(reg.get("y"), 1u);
  EXPECT_EQ(reg.get("missing"), 0u);
  EXPECT_EQ(reg.to_string(), "x=7 y=1");
}

}  // namespace
}  // namespace ph
