// Unit tests for the synchronous-maintenance ParallelHeap: construction,
// batch semantics, edge cases, invariants, and the stats instrumentation.
#include "core/parallel_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ph {
namespace {

using Heap = ParallelHeap<int>;

std::vector<int> iota_vec(int n, int start = 0) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(ParallelHeap, StartsEmpty) {
  Heap h(8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.num_nodes(), 0u);
  EXPECT_EQ(h.levels(), 0u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(ParallelHeap, SingleItem) {
  Heap h(4);
  h.push(42);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.min(), 42);
  EXPECT_TRUE(h.check_invariants());
  EXPECT_EQ(h.pop(), 42);
  EXPECT_TRUE(h.empty());
}

TEST(ParallelHeap, RootBatchIsSortedPrefix) {
  Heap h(4);
  std::vector<int> in{9, 3, 7, 1, 5, 8, 2, 6, 4, 0};
  h.insert_batch(in);
  auto rb = h.root_batch();
  ASSERT_EQ(rb.size(), 4u);
  EXPECT_EQ(std::vector<int>(rb.begin(), rb.end()), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParallelHeap, InsertThenDrainIsSorted) {
  Heap h(8);
  Xoshiro256 rng(3);
  std::vector<int> in(1000);
  for (auto& x : in) x = static_cast<int>(rng.next_below(10000));
  h.insert_batch(in);
  EXPECT_EQ(h.size(), in.size());
  EXPECT_TRUE(h.check_invariants());

  std::vector<int> out;
  const std::size_t got = h.delete_min_batch(in.size(), out);
  EXPECT_EQ(got, in.size());
  std::sort(in.begin(), in.end());
  EXPECT_EQ(out, in);
  EXPECT_TRUE(h.empty());
}

TEST(ParallelHeap, DeleteMoreThanSize) {
  Heap h(4);
  h.insert_batch(std::vector<int>{5, 1, 3});
  std::vector<int> out;
  EXPECT_EQ(h.delete_min_batch(100, out), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5}));
}

TEST(ParallelHeap, DeleteFromEmpty) {
  Heap h(4);
  std::vector<int> out;
  EXPECT_EQ(h.delete_min_batch(10, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelHeap, InsertEmptyBatchIsNoop) {
  Heap h(4);
  h.insert_batch({});
  EXPECT_TRUE(h.empty());
  h.push(1);
  h.insert_batch({});
  EXPECT_EQ(h.size(), 1u);
}

TEST(ParallelHeap, CycleOnEmptyHeapDeletesFromNewItems) {
  Heap h(4);
  std::vector<int> out;
  const std::size_t got = h.cycle(std::vector<int>{7, 2, 9, 4, 1}, 3, out);
  EXPECT_EQ(got, 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(ParallelHeap, CycleDeletesGlobalMinOfHeapAndNewItems) {
  Heap h(4);
  h.insert_batch(iota_vec(32, 100));  // 100..131
  std::vector<int> out;
  // New items straddle the heap's content.
  const std::size_t got = h.cycle(std::vector<int>{50, 105, 500}, 4, out);
  EXPECT_EQ(got, 4u);
  EXPECT_EQ(out, (std::vector<int>{50, 100, 101, 102}));
  EXPECT_EQ(h.size(), 32u + 3u - 4u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(ParallelHeap, CycleWithZeroDeletesActsAsInsert) {
  Heap h(4);
  std::vector<int> out;
  EXPECT_EQ(h.cycle(iota_vec(10), 0, out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(h.size(), 10u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(ParallelHeap, CycleShortFallOnlyWhenExhausted) {
  Heap h(8);
  h.insert_batch(std::vector<int>{1, 2});
  std::vector<int> out;
  EXPECT_EQ(h.cycle(std::vector<int>{3}, 8, out), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(h.empty());
}

TEST(ParallelHeap, MinTracksGlobalMinimum) {
  Heap h(4);
  h.insert_batch(std::vector<int>{50, 60, 70});
  EXPECT_EQ(h.min(), 50);
  h.push(10);
  EXPECT_EQ(h.min(), 10);
  std::vector<int> out;
  h.delete_min_batch(1, out);
  EXPECT_EQ(h.min(), 50);
}

TEST(ParallelHeap, DuplicatesSurvive) {
  Heap h(4);
  std::vector<int> in(100, 7);
  in.resize(150, 3);
  h.insert_batch(in);
  std::vector<int> out;
  h.delete_min_batch(150, out);
  std::sort(in.begin(), in.end());
  EXPECT_EQ(out, in);
}

TEST(ParallelHeap, NodeCapacityOne) {
  // r = 1 degenerates to a classic binary heap of single items.
  Heap h(1);
  std::vector<int> in{5, 3, 8, 1, 9, 2, 7};
  h.insert_batch(in);
  EXPECT_TRUE(h.check_invariants());
  std::vector<int> out;
  h.delete_min_batch(in.size(), out);
  std::sort(in.begin(), in.end());
  EXPECT_EQ(out, in);
}

TEST(ParallelHeap, LargeNodeCapacitySingleNode) {
  Heap h(1024);
  std::vector<int> in{4, 2, 9};
  h.insert_batch(in);
  EXPECT_EQ(h.num_nodes(), 1u);
  std::vector<int> out;
  h.delete_min_batch(3, out);
  EXPECT_EQ(out, (std::vector<int>{2, 4, 9}));
}

TEST(ParallelHeap, InterleavedGrowShrink) {
  Heap h(8);
  Xoshiro256 rng(17);
  std::vector<int> out;
  for (int round = 0; round < 50; ++round) {
    std::vector<int> in(rng.next_below(40));
    for (auto& x : in) x = static_cast<int>(rng.next_below(1000));
    h.insert_batch(in);
    ASSERT_TRUE(h.check_invariants());
    out.clear();
    h.delete_min_batch(rng.next_below(40), out);
    ASSERT_TRUE(h.check_invariants());
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(ParallelHeap, DescendingInsertions) {
  // Every insertion is a new global minimum — maximal insert-path work.
  Heap h(4);
  for (int i = 100; i > 0; --i) h.push(i);
  ASSERT_TRUE(h.check_invariants());
  std::vector<int> out;
  h.delete_min_batch(100, out);
  EXPECT_EQ(out, iota_vec(100, 1));
}

TEST(ParallelHeap, AscendingInsertions) {
  Heap h(4);
  for (int i = 0; i < 100; ++i) h.push(i);
  ASSERT_TRUE(h.check_invariants());
  std::vector<int> out;
  h.delete_min_batch(100, out);
  EXPECT_EQ(out, iota_vec(100));
}

TEST(ParallelHeap, ClearResets) {
  Heap h(4);
  h.insert_batch(iota_vec(100));
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.check_invariants());
  h.push(5);
  EXPECT_EQ(h.min(), 5);
}

TEST(ParallelHeap, SortedContentsMatches) {
  Heap h(8);
  Xoshiro256 rng(23);
  std::vector<int> in(300);
  for (auto& x : in) x = static_cast<int>(rng.next_below(500));
  h.insert_batch(in);
  std::sort(in.begin(), in.end());
  EXPECT_EQ(h.sorted_contents(), in);
}

TEST(ParallelHeap, CustomComparatorMaxHeap) {
  ParallelHeap<int, std::greater<int>> h(4);
  h.insert_batch(std::vector<int>{3, 9, 1, 7});
  EXPECT_EQ(h.min(), 9);  // "min" under greater<> is the max
  std::vector<int> out;
  h.delete_min_batch(4, out);
  EXPECT_EQ(out, (std::vector<int>{9, 7, 3, 1}));
}

struct Event {
  double ts;
  std::uint32_t id;
};
struct EventCmp {
  bool operator()(const Event& a, const Event& b) const { return a.ts < b.ts; }
};

TEST(ParallelHeap, StructPayloadsAndTieStability) {
  ParallelHeap<Event, EventCmp> h(4);
  std::vector<Event> in;
  for (std::uint32_t i = 0; i < 64; ++i) {
    in.push_back({static_cast<double>(i % 4), i});
  }
  h.insert_batch(in);
  std::vector<Event> out;
  h.delete_min_batch(64, out);
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_LE(out[i - 1].ts, out[i].ts);
  // All 16 payloads per timestamp survive.
  std::vector<int> per_ts(4, 0);
  for (const auto& e : out) ++per_ts[static_cast<std::size_t>(e.ts)];
  EXPECT_EQ(per_ts, (std::vector<int>{16, 16, 16, 16}));
}

TEST(ParallelHeap, LevelsGrowLogarithmically) {
  Heap h(4);
  h.insert_batch(iota_vec(4));  // 1 node
  EXPECT_EQ(h.levels(), 1u);
  h.insert_batch(iota_vec(8, 100));  // 3 nodes
  EXPECT_EQ(h.levels(), 2u);
  h.insert_batch(iota_vec(16, 200));  // 7 nodes
  EXPECT_EQ(h.levels(), 3u);
}

TEST(ParallelHeap, StatsCountDeletesAndInserts) {
  Heap h(8);
  h.insert_batch(iota_vec(100));
  std::vector<int> out;
  h.delete_min_batch(40, out);
  const HeapStats& s = h.stats();
  EXPECT_EQ(s.items_inserted, 100u);
  EXPECT_EQ(s.items_deleted, 40u);
  EXPECT_GT(s.nodes_touched, 0u);
  h.reset_stats();
  EXPECT_EQ(h.stats().items_inserted, 0u);
}

TEST(ParallelHeap, SubstituteFetchHappensOnShrink) {
  Heap h(4);
  h.insert_batch(iota_vec(64));
  std::vector<int> out;
  h.delete_min_batch(32, out);  // pure deletions must pull tail substitutes
  EXPECT_GT(h.stats().substitutes, 0u);
  EXPECT_TRUE(h.check_invariants());
}

TEST(ParallelHeap, InvariantCheckerDetectsViolation) {
  // White-box-ish: a freshly built heap passes; we can't corrupt internals
  // through the public API, so instead check the error string plumbing on a
  // valid heap (returns true, leaves `why` untouched).
  Heap h(4);
  h.insert_batch(iota_vec(20));
  std::string why = "untouched";
  EXPECT_TRUE(h.check_invariants(&why));
  EXPECT_EQ(why, "untouched");
}

TEST(ParallelHeap, ReserveDoesNotChangeContent) {
  Heap h(8);
  h.insert_batch(iota_vec(10));
  h.reserve(10000);
  EXPECT_EQ(h.size(), 10u);
  EXPECT_TRUE(h.check_invariants());
  EXPECT_EQ(h.min(), 0);
}

TEST(ParallelHeap, ManySmallCyclesMatchReference) {
  // Steady-state simulation pattern: delete a batch, reinsert as many.
  Heap h(16);
  Xoshiro256 rng(29);
  std::vector<int> in(256);
  for (auto& x : in) x = static_cast<int>(rng.next_below(1 << 20));
  h.insert_batch(in);
  std::vector<int> out;
  int last = -1;
  for (int c = 0; c < 100; ++c) {
    out.clear();
    std::vector<int> fresh(16);
    // Fresh items are strictly larger than anything deleted so far, so the
    // deletion sequence must be globally non-decreasing.
    for (auto& x : fresh) x = last + 1 + static_cast<int>(rng.next_below(1 << 20));
    h.cycle(fresh, 16, out);
    ASSERT_EQ(out.size(), 16u);
    for (int v : out) {
      ASSERT_LE(last, v);
      last = v;
    }
    ASSERT_TRUE(h.check_invariants());
  }
}

}  // namespace
}  // namespace ph
