// Differential tests for the pipelined parallel heap: its deletion stream
// must match (a) a sorted-multiset oracle and (b) the synchronous reference
// ParallelHeap, across randomized and adversarial schedules. This validates
// the central theorem of the paper — that the odd/even level pipeline never
// lets an in-flight item miss its deletion slot.
#include "core/pipelined_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using Pipelined = PipelinedParallelHeap<std::uint64_t>;
using Reference = ParallelHeap<std::uint64_t>;

struct Params {
  std::size_t r;
  std::uint64_t key_bound;
  std::uint64_t seed;
};

class PipelinedVsReference : public ::testing::TestWithParam<Params> {};

// Steady-state simulation pattern: every step() deletes up to k and inserts
// a random batch; this keeps several generations of update processes in
// flight simultaneously, which is the regime the pipeline exists for.
TEST_P(PipelinedVsReference, SteadyStateSteps) {
  const Params p = GetParam();
  Pipelined pipe(p.r);
  Reference ref(p.r);
  Xoshiro256 rng(p.seed);

  std::vector<std::uint64_t> fresh, got, want;
  for (int step = 0; step < 600; ++step) {
    fresh.clear();
    const std::size_t n = rng.next_below(2 * p.r + 1);
    for (std::size_t i = 0; i < n; ++i) fresh.push_back(rng.next_below(p.key_bound));
    const std::size_t k = rng.next_below(p.r + 1);
    got.clear();
    want.clear();
    pipe.step(fresh, k, got);
    ref.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "step " << step << " r=" << p.r;
    ASSERT_EQ(pipe.size(), ref.size()) << "step " << step;
  }
  // Drained contents must be identical too.
  ASSERT_EQ(pipe.sorted_contents(), ref.sorted_contents());
  std::string why;
  ASSERT_TRUE(pipe.check_invariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinedVsReference,
    ::testing::Values(Params{1, 1u << 16, 501}, Params{2, 1u << 16, 502},
                      Params{3, 1u << 16, 503}, Params{4, 1u << 16, 504},
                      Params{5, 1u << 16, 505}, Params{8, 1u << 16, 506},
                      Params{16, 1u << 16, 507}, Params{32, 1u << 16, 508},
                      Params{64, 1u << 16, 509}, Params{128, 1u << 16, 510},
                      // duplicate-heavy and degenerate key spaces
                      Params{4, 8, 511}, Params{8, 2, 512}, Params{16, 1, 513},
                      Params{3, 4, 514}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "r" + std::to_string(info.param.r) + "_keys" +
             std::to_string(info.param.key_bound) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(PipelinedHeap, PureGrowThenPureShrink) {
  Pipelined pipe(8);
  Reference ref(8);
  Xoshiro256 rng(601);
  std::vector<std::uint64_t> fresh, got, want;
  // Grow: many insert generations in flight at once.
  for (int step = 0; step < 100; ++step) {
    fresh.clear();
    for (int i = 0; i < 16; ++i) fresh.push_back(rng.next_below(1u << 20));
    got.clear();
    want.clear();
    pipe.step(fresh, 0, got);
    ref.cycle(fresh, 0, want);
  }
  ASSERT_EQ(pipe.size(), ref.size());
  // Shrink: substitutes must steal from any deliveries still in flight.
  while (ref.size() > 0) {
    got.clear();
    want.clear();
    pipe.step({}, 8, got);
    ref.cycle({}, 8, want);
    ASSERT_EQ(got, want) << "remaining " << ref.size();
  }
  ASSERT_TRUE(pipe.empty());
}

TEST(PipelinedHeap, ImmediateShrinkAfterGrowStealsInFlight) {
  // Insert a large batch (procs in flight) and shrink on the very next
  // step, forcing tail substitutes to come out of carried sets.
  Pipelined pipe(16);
  Reference ref(16);
  Xoshiro256 rng(602);
  std::vector<std::uint64_t> fresh(400), got, want;
  for (auto& x : fresh) x = rng.next_below(1u << 24);
  pipe.insert_batch(fresh);
  ref.insert_batch(fresh);
  for (int step = 0; step < 30; ++step) {
    got.clear();
    want.clear();
    pipe.step({}, 16, got);
    ref.cycle({}, 16, want);
    ASSERT_EQ(got, want) << "step " << step;
  }
  EXPECT_GT(pipe.pipeline_stats().steals, 0u);
}

TEST(PipelinedHeap, DescendingKeysEveryStep) {
  // Every fresh batch is a new global minimum: deletions should come from
  // the fresh items while old content sinks; heavily exercises root merges.
  Pipelined pipe(8);
  Reference ref(8);
  std::vector<std::uint64_t> got, want;
  std::uint64_t key = 1u << 30;
  for (int step = 0; step < 300; ++step) {
    std::vector<std::uint64_t> fresh(12);
    for (auto& x : fresh) x = --key;
    got.clear();
    want.clear();
    pipe.step(fresh, 6, got);
    ref.cycle(fresh, 6, want);
    ASSERT_EQ(got, want) << "step " << step;
  }
  ASSERT_EQ(pipe.sorted_contents(), ref.sorted_contents());
}

TEST(PipelinedHeap, AscendingKeysEveryStep) {
  Pipelined pipe(8);
  Reference ref(8);
  std::vector<std::uint64_t> got, want;
  std::uint64_t key = 0;
  for (int step = 0; step < 300; ++step) {
    std::vector<std::uint64_t> fresh(12);
    for (auto& x : fresh) x = ++key;
    got.clear();
    want.clear();
    pipe.step(fresh, 6, got);
    ref.cycle(fresh, 6, want);
    ASSERT_EQ(got, want) << "step " << step;
  }
}

TEST(PipelinedHeap, BuildMatchesReferenceDrain) {
  Xoshiro256 rng(603);
  std::vector<std::uint64_t> items(10000);
  for (auto& x : items) x = rng.next_below(1u << 28);
  Pipelined pipe(64);
  pipe.build(items);
  ASSERT_TRUE(pipe.check_invariants());
  std::vector<std::uint64_t> got;
  pipe.delete_min_batch(items.size(), got);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(got, items);
}

TEST(PipelinedHeap, EmptyAndTinyHeaps) {
  Pipelined pipe(4);
  std::vector<std::uint64_t> got;
  EXPECT_EQ(pipe.step({}, 4, got), 0u);
  EXPECT_TRUE(got.empty());
  pipe.insert_batch(std::vector<std::uint64_t>{5});
  got.clear();
  EXPECT_EQ(pipe.step({}, 4, got), 1u);
  EXPECT_EQ(got, (std::vector<std::uint64_t>{5}));
  EXPECT_TRUE(pipe.empty());
}

TEST(PipelinedHeap, SawtoothSizes) {
  Pipelined pipe(4);
  Reference ref(4);
  Xoshiro256 rng(604);
  std::vector<std::uint64_t> fresh, got, want;
  for (int round = 0; round < 30; ++round) {
    const int grow = 1 + static_cast<int>(rng.next_below(40));
    for (int s = 0; s < grow; ++s) {
      fresh.clear();
      for (int i = 0; i < 6; ++i) fresh.push_back(rng.next_below(1u << 16));
      got.clear();
      want.clear();
      pipe.step(fresh, 2, got);
      ref.cycle(fresh, 2, want);
      ASSERT_EQ(got, want);
    }
    while (pipe.size() > 3) {
      got.clear();
      want.clear();
      pipe.step({}, 4, got);
      ref.cycle({}, 4, want);
      ASSERT_EQ(got, want);
    }
  }
}

TEST(PipelinedHeap, PipelineActuallyPipelines) {
  // With a deep heap and steady cycles, several generations must be in
  // flight at once — that is the whole point. Checked via stats.
  Pipelined pipe(8);
  Xoshiro256 rng(605);
  std::vector<std::uint64_t> seedv(8 * 1024), got;
  for (auto& x : seedv) x = rng.next_below(1u << 30);
  pipe.build(seedv);
  for (int step = 0; step < 50; ++step) {
    std::vector<std::uint64_t> fresh(8);
    for (auto& x : fresh) x = rng.next_below(1u << 30);
    got.clear();
    pipe.step(fresh, 8, got);
    ASSERT_EQ(got.size(), 8u);
  }
  EXPECT_GT(pipe.pipeline_stats().max_inflight, 2u);
  EXPECT_GT(pipe.pipeline_stats().procs_serviced, 100u);
}

TEST(PipelinedHeap, StatsAccounting) {
  Pipelined pipe(8);
  std::vector<std::uint64_t> got;
  pipe.step(std::vector<std::uint64_t>{3, 1, 2}, 2, got);
  const HeapStats& s = pipe.stats();
  EXPECT_EQ(s.items_inserted, 3u);
  EXPECT_EQ(s.items_deleted, 2u);
  EXPECT_EQ(s.cycles, 1u);
  pipe.reset_stats();
  EXPECT_EQ(pipe.stats().cycles, 0u);
}

TEST(PipelinedHeap, LongRandomSoak) {
  // A long mixed-schedule soak with per-step oracle checks on the deleted
  // stream (the oracle is the reference heap, itself oracle-tested).
  Pipelined pipe(8);
  Reference ref(8);
  Xoshiro256 rng(606);
  std::vector<std::uint64_t> fresh, got, want;
  for (int step = 0; step < 5000; ++step) {
    fresh.clear();
    const std::size_t n = rng.next_below(18);
    for (std::size_t i = 0; i < n; ++i) fresh.push_back(rng.next_below(1u << 12));
    const std::size_t k = rng.next_below(9);
    got.clear();
    want.clear();
    pipe.step(fresh, k, got);
    ref.cycle(fresh, k, want);
    ASSERT_EQ(got, want) << "step " << step;
  }
}

}  // namespace
}  // namespace ph
