// Tests for the LookaheadWindow scheduler: commit/defer semantics, safety
// (committed stream globally ordered when producers respect the lookahead),
// the stop hook, and flush-on-stop.
#include "core/window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel_heap.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

struct Key {
  double operator()(std::uint64_t v) const { return static_cast<double>(v); }
};
using Heap = ParallelHeap<std::uint64_t>;

TEST(LookaheadWindow, DrainsEverythingOnce) {
  Heap q(8);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> in(500);
  for (auto& x : in) x = rng.next_below(10000);
  q.insert_batch(in);
  LookaheadWindow<std::uint64_t, Heap, Key> win(q, 5.0);
  std::vector<std::uint64_t> seen;
  const WindowStats st = win.run(8, [&](std::uint64_t v, auto&&) {
    seen.push_back(v);
  });
  EXPECT_EQ(st.committed, in.size());
  std::sort(in.begin(), in.end());
  // Committed stream is globally sorted: within a batch items are sorted,
  // and deferral ensures nothing beyond the window jumps ahead of items
  // that could still... in a no-producer run everything is final anyway.
  EXPECT_EQ(seen, in);
  EXPECT_TRUE(q.empty());
}

TEST(LookaheadWindow, CommittedStreamOrderedWithProducers) {
  // Producers emit key + lookahead or more: the committed stream must be
  // globally non-decreasing (the safety property).
  Heap q(16);
  q.insert_batch(std::vector<std::uint64_t>{0, 1, 2, 3});
  LookaheadWindow<std::uint64_t, Heap, Key> win(q, 2.0);
  Xoshiro256 rng(5);
  std::uint64_t prev = 0;
  std::uint64_t produced = 0;
  const WindowStats st = win.run(16, [&](std::uint64_t v, auto&& emit) {
    EXPECT_GE(v, prev);
    prev = v;
    if (produced < 2000) {
      ++produced;
      emit(v + 2 + rng.next_below(50));  // ≥ key + lookahead
    }
  });
  EXPECT_EQ(st.committed, 4u + 2000u);
  EXPECT_GT(st.cycles, 0u);
}

TEST(LookaheadWindow, DefersBeyondWindow) {
  Heap q(64);
  // One early item and many far-future ones: with a large batch the far
  // items are deleted together but must be deferred, not committed early.
  std::vector<std::uint64_t> in{1};
  for (int i = 0; i < 63; ++i) in.push_back(1000 + static_cast<std::uint64_t>(i));
  q.insert_batch(in);
  LookaheadWindow<std::uint64_t, Heap, Key> win(q, 3.0);
  std::vector<std::uint64_t> seen;
  const WindowStats st = win.run(64, [&](std::uint64_t v, auto&&) {
    seen.push_back(v);
  });
  EXPECT_GT(st.deferred, 0u);
  EXPECT_EQ(st.committed, 64u);  // everything commits eventually
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(LookaheadWindow, StopFlushesPending) {
  Heap q(8);
  std::vector<std::uint64_t> in;
  for (std::uint64_t i = 0; i < 100; ++i) in.push_back(i * 10);
  q.insert_batch(in);
  LookaheadWindow<std::uint64_t, Heap, Key> win(q, 5.0);
  std::uint64_t count = 0;
  win.run(8, [&](std::uint64_t, auto&&) {
    if (++count == 10) win.stop();
  });
  // stop takes effect at the batch boundary, so the current batch finishes.
  EXPECT_GE(count, 10u);
  EXPECT_LE(count, 16u);
  // All unprocessed items remain queued.
  EXPECT_EQ(q.size(), 100u - count);
}

TEST(LookaheadWindow, EmptyQueueNoCalls) {
  Heap q(4);
  LookaheadWindow<std::uint64_t, Heap, Key> win(q, 1.0);
  const WindowStats st = win.run(4, [&](std::uint64_t, auto&&) {
    FAIL() << "no items to process";
  });
  EXPECT_EQ(st.cycles, 0u);
  EXPECT_EQ(st.committed, 0u);
}

}  // namespace
}  // namespace ph
