// Durability subsystem tests (src/persist/): frame/CRC plumbing, WAL
// segment round-trips and torn-tail detection, checkpoint round-trips for
// both PQ engines, and the recovery state machine's edge cases — empty
// directory, checkpoint-only, WAL-only, torn last record, bit-flipped
// checkpoint frames falling back to the previous checkpoint, WAL sequence
// holes, and a crash *during* recovery. Every recovered heap is checked
// bit-exactly against an oracle fed the same deterministic ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/pipelined_heap.hpp"
#include "core/sharded_heap.hpp"
#include "persist/checkpoint.hpp"
#include "persist/format.hpp"
#include "persist/recovery.hpp"
#include "persist/wal.hpp"
#include "robustness/failpoint.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sync_sim.hpp"
#include "testing/oracle.hpp"
#include "util/rng.hpp"

namespace ph {
namespace {

using U64 = std::uint64_t;
namespace ps = ph::persist;
namespace rb = ph::robustness;
namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag = "ph-test-persist")
      : path(ps::make_temp_dir(tag)) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

struct DisarmGuard {
  ~DisarmGuard() { rb::disarm_all(); }
};

/// Deterministic op i (1-based) as a pure function of (seed, i) — replaying
/// any prefix never needs heap output.
struct Op {
  std::vector<U64> fresh;
  std::size_t k = 0;
};

Op gen_op(U64 seed, std::size_t i, std::size_t r, U64 bound = 1u << 20) {
  Xoshiro256 rng(seed ^ (0xd1342543de82ef95ull * (i + 1)));
  Op op;
  const std::size_t nfresh = rng.next_below(r + 1);
  for (std::size_t j = 0; j < nfresh; ++j) op.fresh.push_back(rng.next_below(bound));
  op.k = (i % 3 == 0) ? r : rng.next_below(r + 1);
  return op;
}

/// Runs ops [1, n] on `q`, mirroring them into `oracle`, asserting exact
/// delete-min streams along the way.
template <typename Q>
void run_ops(Q& q, testing::SortedOracle& oracle, U64 seed, std::size_t n,
             std::size_t r) {
  std::vector<U64> got, want;
  for (std::size_t i = 1; i <= n; ++i) {
    const Op op = gen_op(seed, i, r);
    got.clear();
    want.clear();
    q.cycle(op.fresh, op.k, got);
    oracle.cycle(op.fresh, op.k, want);
    ASSERT_EQ(got, want) << "op " << i;
  }
}

/// Drains `q` against `oracle` to empty, asserting the exact same streams.
template <typename Q>
void drain_exact(Q& q, testing::SortedOracle& oracle, std::size_t r) {
  std::vector<U64> got, want;
  for (int guard = 0; guard < 1 << 15; ++guard) {
    if (q.empty() && oracle.empty()) return;
    got.clear();
    want.clear();
    q.cycle({}, r, got);
    oracle.cycle({}, r, want);
    ASSERT_EQ(got, want);
    ASSERT_FALSE(got.empty() && !oracle.empty()) << "heap drained dry early";
  }
  FAIL() << "drain did not terminate";
}

ps::DurableOptions opts(const TempDir& dir,
                        ps::FsyncPolicy fsync = ps::FsyncPolicy::kNever,
                        std::size_t interval = 0) {
  ps::DurableOptions d;
  d.dir = dir.path;
  d.fsync = fsync;
  d.checkpoint_interval = interval;
  return d;
}

using PipelinedDH = ps::DurableHeap<PipelinedParallelHeap<U64>>;

PipelinedDH make_dh(const TempDir& dir, std::size_t r,
                    ps::DurableOptions d = {}) {
  if (d.dir.empty()) d = opts(dir);
  return PipelinedDH(PipelinedParallelHeap<U64>(r), d);
}

// ------------------------------------------------------------- format

TEST(PersistFormat, Crc32MatchesKnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(ps::crc32({reinterpret_cast<const std::uint8_t*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(ps::crc32({}), 0u);
}

TEST(PersistFormat, FrameRoundTripAndTornTailDetection) {
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> p1 = {1, 2, 3};
  std::vector<std::uint8_t> p2 = {9, 8, 7, 6, 5};
  ps::append_frame(buf, p1);
  ps::append_frame(buf, p2);

  ps::FrameCursor cur(buf);
  std::span<const std::uint8_t> payload;
  ASSERT_TRUE(cur.next(payload));
  EXPECT_EQ(std::vector<std::uint8_t>(payload.begin(), payload.end()), p1);
  ASSERT_TRUE(cur.next(payload));
  EXPECT_EQ(std::vector<std::uint8_t>(payload.begin(), payload.end()), p2);
  EXPECT_FALSE(cur.next(payload));
  EXPECT_FALSE(cur.has_garbage_tail());

  // Cut the last frame short: the first frame still reads, the torn second
  // is the termination condition, flagged as a garbage tail.
  std::vector<std::uint8_t> torn(buf.begin(), buf.end() - 3);
  ps::FrameCursor cur2(torn);
  ASSERT_TRUE(cur2.next(payload));
  EXPECT_FALSE(cur2.next(payload));
  EXPECT_TRUE(cur2.has_garbage_tail());

  // Flip one payload byte: CRC rejects the frame.
  std::vector<std::uint8_t> flipped = buf;
  flipped[flipped.size() - 2] ^= 0x10;
  ps::FrameCursor cur3(flipped);
  ASSERT_TRUE(cur3.next(payload));
  EXPECT_FALSE(cur3.next(payload));
  EXPECT_TRUE(cur3.has_garbage_tail());
}

// ---------------------------------------------------------------- wal

TEST(Wal, SegmentRoundTrip) {
  TempDir dir;
  const std::string path = dir.path + "/" + ps::wal_filename(0);
  {
    ps::WalWriter<U64> w(path, 0, ps::FsyncPolicy::kNever);
    const std::vector<U64> items = {5, 3, 8};
    w.append(ps::RecType::kCycle, 1, 2, items);
    w.append(ps::RecType::kInsert, 2, 0, std::vector<U64>{42});
    w.append(ps::RecType::kDelete, 3, 7, {});
  }
  const auto seg = ps::read_segment<U64>(path);
  ASSERT_TRUE(seg.header_ok);
  EXPECT_FALSE(seg.torn_tail);
  EXPECT_EQ(seg.start_seq, 0u);
  ASSERT_EQ(seg.records.size(), 3u);
  EXPECT_EQ(seg.records[0].type, ps::RecType::kCycle);
  EXPECT_EQ(seg.records[0].seq, 1u);
  EXPECT_EQ(seg.records[0].k, 2u);
  EXPECT_EQ(seg.records[0].items, (std::vector<U64>{5, 3, 8}));
  EXPECT_EQ(seg.records[1].type, ps::RecType::kInsert);
  EXPECT_EQ(seg.records[2].k, 7u);
  EXPECT_TRUE(seg.records[2].items.empty());
}

TEST(Wal, TornLastRecordIsCutCleanly) {
  TempDir dir;
  const std::string path = dir.path + "/" + ps::wal_filename(0);
  {
    ps::WalWriter<U64> w(path, 0, ps::FsyncPolicy::kNever);
    w.append(ps::RecType::kCycle, 1, 1, std::vector<U64>{1, 2});
    w.append(ps::RecType::kCycle, 2, 1, std::vector<U64>{3, 4});
  }
  std::error_code ec;
  fs::resize_file(path, fs::file_size(path) - 5, ec);
  ASSERT_FALSE(ec);
  const auto seg = ps::read_segment<U64>(path);
  ASSERT_TRUE(seg.header_ok);
  EXPECT_TRUE(seg.torn_tail);
  ASSERT_EQ(seg.records.size(), 1u);
  EXPECT_EQ(seg.records[0].seq, 1u);
}

TEST(Wal, WrongItemSizeIsRejectedNotMisread) {
  TempDir dir;
  const std::string path = dir.path + "/" + ps::wal_filename(0);
  {
    ps::WalWriter<std::uint32_t> w(path, 0, ps::FsyncPolicy::kNever);
    w.append(ps::RecType::kInsert, 1, 0, std::vector<std::uint32_t>{1, 2, 3});
  }
  const auto seg = ps::read_segment<U64>(path);  // wrong item width
  EXPECT_FALSE(seg.header_ok);
  EXPECT_TRUE(seg.records.empty());
}

// --------------------------------------------------------- checkpoint

TEST(Checkpoint, PipelinedRoundTrip) {
  TempDir dir;
  PipelinedParallelHeap<U64> q(8);
  std::vector<U64> keys;
  for (U64 i = 0; i < 100; ++i) keys.push_back((i * 37) % 1000);
  q.build(keys);
  std::vector<U64> sink;
  q.cycle(std::vector<U64>{7, 3, 900}, 8, sink);  // mid-pipeline state

  ps::write_checkpoint(dir.path, 17, ps::to_image(q), ps::FsyncPolicy::kNever);

  const auto ckpts = ps::list_checkpoints(dir.path);
  ASSERT_EQ(ckpts.size(), 1u);
  EXPECT_EQ(ckpts[0].first, 17u);
  ps::CheckpointImage<U64> img;
  std::uint64_t seq = 0;
  ASSERT_TRUE(ps::load_checkpoint(ckpts[0].second, img, seq));
  EXPECT_EQ(seq, 17u);

  PipelinedParallelHeap<U64> q2(8);
  ps::from_image(q2, img);
  EXPECT_EQ(q2.sorted_contents(), q.sorted_contents());
  std::string why;
  EXPECT_TRUE(q2.verify_invariants(&why)) << why;
}

TEST(Checkpoint, ShardedRoundTripPreservesPartitionMap) {
  TempDir dir;
  ShardedHeap<U64>::Config scfg;
  scfg.shards = 4;
  ShardedHeap<U64> q(8, scfg);
  std::vector<U64> sink;
  Xoshiro256 rng(11);
  for (int c = 0; c < 20; ++c) {
    std::vector<U64> fresh(16);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    q.cycle(fresh, 8, sink);
  }
  ps::write_checkpoint(dir.path, 20, ps::to_image(q), ps::FsyncPolicy::kNever);

  ps::CheckpointImage<U64> img;
  std::uint64_t seq = 0;
  const auto ckpts = ps::list_checkpoints(dir.path);
  ASSERT_EQ(ckpts.size(), 1u);
  ASSERT_TRUE(ps::load_checkpoint(ckpts[0].second, img, seq));
  ASSERT_EQ(img.runs.size(), 4u);  // one sorted run per shard

  ShardedHeap<U64> q2(8, scfg);
  ps::from_image(q2, img);
  EXPECT_EQ(q2.size(), q.size());
  std::string why;
  EXPECT_TRUE(q2.check_invariants(&why)) << why;
  // Exact same future stream.
  std::vector<U64> a, b;
  while (!q.empty() || !q2.empty()) {
    a.clear();
    b.clear();
    q.cycle({}, 8, a);
    q2.cycle({}, 8, b);
    ASSERT_EQ(a, b);
  }
}

TEST(Checkpoint, BitFlippedFrameFailsValidation) {
  TempDir dir;
  PipelinedParallelHeap<U64> q(4);
  q.build(std::vector<U64>{1, 2, 3, 4, 5, 6, 7, 8});
  ps::write_checkpoint(dir.path, 3, ps::to_image(q), ps::FsyncPolicy::kNever);
  const auto ckpts = ps::list_checkpoints(dir.path);
  ASSERT_EQ(ckpts.size(), 1u);

  std::fstream f(ckpts[0].second,
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const std::streamoff at = static_cast<std::streamoff>(f.tellg()) / 2;
  f.seekg(at);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x01);
  f.seekp(at);
  f.write(&b, 1);
  f.close();

  ps::CheckpointImage<U64> img;
  std::uint64_t seq = 0;
  EXPECT_FALSE(ps::load_checkpoint(ckpts[0].second, img, seq));
}

// ------------------------------------------------ recovery edge cases

TEST(Recovery, EmptyDirectoryStartsEmptyAndIsUsable) {
  TempDir dir;
  auto q = make_dh(dir, 8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.op_seq(), 0u);
  EXPECT_FALSE(q.recovery_info().checkpoint_loaded);
  EXPECT_EQ(q.recovery_info().replayed, 0u);

  testing::SortedOracle oracle;
  run_ops(q, oracle, 42, 30, 8);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, CheckpointOnlyRestart) {
  TempDir dir;
  testing::SortedOracle oracle;
  {
    auto q = make_dh(dir, 8);
    run_ops(q, oracle, 5, 24, 8);
    ASSERT_TRUE(q.checkpoint_now());
  }  // all state lives in the checkpoint; the live segment is empty
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;
  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_TRUE(q.recovery_info().checkpoint_loaded);
  EXPECT_EQ(q.recovery_info().replayed, 0u);
  EXPECT_EQ(q.op_seq(), 24u);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, WalOnlyRestartReplaysEverything) {
  TempDir dir;
  testing::SortedOracle oracle;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;  // never write any checkpoint
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    run_ops(q, oracle, 6, 24, 8);
  }
  EXPECT_TRUE(ps::list_checkpoints(dir.path).empty());
  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_FALSE(q.recovery_info().checkpoint_loaded);
  EXPECT_EQ(q.recovery_info().replayed, 24u);
  EXPECT_EQ(q.op_seq(), 24u);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, TornLastRecordRecoversThePrefix) {
  TempDir dir;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    testing::SortedOracle scratch;
    run_ops(q, scratch, 7, 20, 8);
  }
  // Tear the tail of the only segment: op 20's record loses its last bytes.
  const auto segs = ps::list_wal_segments(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  std::error_code ec;
  fs::resize_file(segs[0].second, fs::file_size(segs[0].second) - 3, ec);
  ASSERT_FALSE(ec);

  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.op_seq(), 19u);
  EXPECT_TRUE(q.recovery_info().wal_torn);

  testing::SortedOracle oracle;
  std::vector<U64> sink;
  for (std::size_t i = 1; i <= 19; ++i) {
    const Op op = gen_op(7, i, 8);
    sink.clear();
    oracle.cycle(op.fresh, op.k, sink);
  }
  drain_exact(q, oracle, 8);
}

TEST(Recovery, CorruptNewestCheckpointFallsBackToPrevious) {
  TempDir dir;
  testing::SortedOracle oracle;
  {
    auto q = make_dh(dir, 8, opts(dir, ps::FsyncPolicy::kNever, /*interval=*/5));
    run_ops(q, oracle, 8, 32, 8);
  }
  auto ckpts = ps::list_checkpoints(dir.path);
  ASSERT_GE(ckpts.size(), 2u);  // retention keeps 2
  {
    std::fstream f(ckpts.back().second,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff at = static_cast<std::streamoff>(f.tellg()) / 2;
    f.seekp(at);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }

  auto q = make_dh(dir, 8, opts(dir, ps::FsyncPolicy::kNever, 5));
  EXPECT_EQ(q.recovery_info().corrupt_checkpoints, 1u);
  EXPECT_TRUE(q.recovery_info().checkpoint_loaded);  // the previous one
  EXPECT_GT(q.recovery_info().replayed, 0u);         // WAL bridged the gap
  EXPECT_EQ(q.op_seq(), 32u);
  // The reject was renamed aside, never deleted and never reconsidered.
  bool corrupt_file_present = false;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().string().ends_with(".corrupt")) corrupt_file_present = true;
  }
  EXPECT_TRUE(corrupt_file_present);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, WalSequenceHoleIsLoudCorruption) {
  TempDir dir;
  {
    ps::WalWriter<U64> w(dir.path + "/" + ps::wal_filename(0), 0,
                         ps::FsyncPolicy::kNever);
    w.append(ps::RecType::kInsert, 1, 0, std::vector<U64>{1, 2, 3});
    w.append(ps::RecType::kInsert, 3, 0, std::vector<U64>{4});  // hole: no op 2
  }
  EXPECT_THROW(make_dh(dir, 8), ps::CorruptStateError);
}

TEST(Recovery, ZeroLengthSegmentIsBenign) {
  // Crash at segment rotation: the new segment file exists but never
  // received a record. That is a legal tail state, not corruption.
  TempDir dir;
  testing::SortedOracle oracle;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    run_ops(q, oracle, 31, 24, 8);
  }
  { std::ofstream f(dir.path + "/" + ps::wal_filename(24)); }
  ASSERT_EQ(ps::list_wal_segments(dir.path).size(), 2u);

  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.op_seq(), 24u);
  EXPECT_EQ(q.recovery_info().replayed, 24u);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, TornTailOnlySegmentIsBenign) {
  // The only segment holds nothing but a torn first record: every logged
  // byte is unacknowledged tail. Recovery starts empty — loudly NOT an
  // error — and the directory stays usable.
  TempDir dir;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    testing::SortedOracle scratch;
    run_ops(q, scratch, 32, 1, 8);
  }
  const auto segs = ps::list_wal_segments(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  std::error_code ec;
  fs::resize_file(segs[0].second, 5, ec);  // mid-header: no whole record left
  ASSERT_FALSE(ec);

  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.op_seq(), 0u);
  EXPECT_TRUE(q.recovery_info().wal_torn);
  testing::SortedOracle oracle;
  run_ops(q, oracle, 33, 12, 8);
  drain_exact(q, oracle, 8);
}

TEST(Recovery, MissingCoveringWalSegmentsIsLoud) {
  // A checkpoint with NO segment at-or-below its sequence means segments
  // were deleted out from under the store: acknowledged ops after the
  // checkpoint may be gone, and recovery must refuse rather than silently
  // resurrect the stale image.
  TempDir dir;
  {
    auto q = make_dh(dir, 8, opts(dir, ps::FsyncPolicy::kNever, /*interval=*/5));
    testing::SortedOracle scratch;
    run_ops(q, scratch, 34, 32, 8);
  }
  ASSERT_FALSE(ps::list_checkpoints(dir.path).empty());
  for (const auto& [seq, path] : ps::list_wal_segments(dir.path)) {
    fs::remove(path);
  }
  EXPECT_THROW(make_dh(dir, 8, opts(dir, ps::FsyncPolicy::kNever, 5)),
               ps::CorruptStateError);
}

TEST(Recovery, CrashDuringRecoveryIsIdempotent) {
  if (!rb::kFailpoints) GTEST_SKIP() << "built with PH_FAILPOINTS=OFF";
  DisarmGuard guard;
  TempDir dir;
  testing::SortedOracle oracle;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;  // keep the whole history in the WAL
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    run_ops(q, oracle, 9, 30, 8);
  }
  // First recovery attempt dies between replayed records (exception-shaped
  // stand-in for a second crash). Recovery mutates no pre-existing file, so
  // the directory stays exactly as recoverable as before.
  rb::arm(rb::FailSite::kRecoverReplay, rb::FireSpec{12, 0, 1, 0});
  EXPECT_THROW(PipelinedDH(PipelinedParallelHeap<U64>(8), d), rb::InjectedFault);
  rb::disarm_all();

  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.op_seq(), 30u);
  EXPECT_EQ(q.recovery_info().replayed, 30u);
  drain_exact(q, oracle, 8);
}

// ---------------------------------------------- durable heap behaviors

class FsyncPolicySweep : public ::testing::TestWithParam<ps::FsyncPolicy> {};

TEST_P(FsyncPolicySweep, RestartIsExactUnderEveryPolicy) {
  TempDir dir;
  testing::SortedOracle oracle;
  const ps::DurableOptions d = opts(dir, GetParam(), /*interval=*/6);
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    run_ops(q, oracle, 13, 25, 8);
  }
  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.op_seq(), 25u);
  run_ops(q, oracle, 14, 10, 8);  // keep going after restart
  drain_exact(q, oracle, 8);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FsyncPolicySweep,
                         ::testing::Values(ps::FsyncPolicy::kNever,
                                           ps::FsyncPolicy::kOnCheckpoint,
                                           ps::FsyncPolicy::kEveryRecord),
                         [](const auto& info) {
                           return ps::fsync_policy_name(info.param);
                         });

TEST(DurableHeap, BuildIsDurableThroughTheLog) {
  TempDir dir;
  ps::DurableOptions d = opts(dir);
  d.checkpoint_on_open = false;  // force build() to survive via its WAL record
  std::vector<U64> keys;
  for (U64 i = 0; i < 50; ++i) keys.push_back(1000 - i);
  {
    PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
    q.build(keys);
  }
  PipelinedDH q(PipelinedParallelHeap<U64>(8), d);
  EXPECT_EQ(q.size(), keys.size());
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(q.heap().sorted_contents(), keys);
}

TEST(DurableHeap, RetentionPrunesOldCheckpointsAndSegments) {
  TempDir dir;
  auto q = make_dh(dir, 8, opts(dir, ps::FsyncPolicy::kNever, /*interval=*/4));
  testing::SortedOracle oracle;
  run_ops(q, oracle, 21, 40, 8);  // ~10 checkpoints published
  const auto ckpts = ps::list_checkpoints(dir.path);
  EXPECT_EQ(ckpts.size(), 2u);  // keep_checkpoints default
  for (const auto& [sseq, spath] : ps::list_wal_segments(dir.path)) {
    EXPECT_GE(sseq, ckpts.front().first) << spath;
  }
  drain_exact(q, oracle, 8);
}

TEST(DurableHeap, ShardedEngineRestartsExactly) {
  TempDir dir;
  using SH = ShardedHeap<U64>;
  SH::Config scfg;
  scfg.shards = 4;
  testing::SortedOracle oracle;
  {
    ps::DurableHeap<SH> q(SH(8, scfg), opts(dir, ps::FsyncPolicy::kNever, 6));
    run_ops(q, oracle, 31, 40, 8);
    EXPECT_EQ(q.heap().num_shards(), 4u);
  }
  ps::DurableHeap<SH> q(SH(8, scfg), opts(dir, ps::FsyncPolicy::kNever, 6));
  EXPECT_EQ(q.op_seq(), 40u);
  EXPECT_EQ(q.heap().num_shards(), 4u);
  run_ops(q, oracle, 32, 15, 8);
  drain_exact(q, oracle, 8);
}

TEST(DurableHeap, EngineRunsOverDurableHeapAndRemainderSurvivesRestart) {
  TempDir dir;
  using DH = PipelinedDH;
  EngineConfig ecfg;
  ecfg.node_capacity = 8;
  ecfg.think_threads = 2;
  ecfg.batch = 8;
  std::vector<U64> seedv(160);
  for (std::size_t i = 0; i < seedv.size(); ++i) seedv[i] = static_cast<U64>(i);

  std::uint64_t processed = 0;
  {
    ParallelHeapEngine<U64, std::less<U64>, DH> engine(
        ecfg, DH(PipelinedParallelHeap<U64>(8), opts(dir)));
    engine.seed(seedv);
    // Stop partway: the unprocessed remainder must survive the restart.
    const EngineReport rep = engine.run(
        [](unsigned, std::span<const U64>, std::span<const U64>,
           std::vector<U64>&) {},
        /*max_items=*/80);
    processed = rep.items_processed;
    ASSERT_GE(processed, 80u);
    ASSERT_LT(processed, seedv.size());
  }

  // The engine deletes strictly ascending batches, so what remains is
  // exactly the items above the processed prefix.
  auto q = make_dh(dir, 8);
  EXPECT_EQ(q.size(), seedv.size() - processed);
  testing::SortedOracle oracle;
  std::vector<U64> sink;
  oracle.cycle(std::vector<U64>(seedv.begin() + static_cast<std::ptrdiff_t>(processed),
                                seedv.end()),
               0, sink);
  drain_exact(q, oracle, 8);
}

TEST(DurableHeap, SyncSimOverDurableHeapMatchesSerial) {
  TempDir dir;
  const sim::Topology t = sim::make_torus(6, 6);
  sim::ModelConfig mc;
  mc.seed = 4;
  const sim::Model m(t, mc);
  const sim::SimResult want = sim::run_serial_sim(m, 30.0);

  ps::DurableOptions d;
  d.dir = dir.path;
  d.fsync = ps::FsyncPolicy::kNever;
  d.checkpoint_interval = 32;
  ps::DurableHeap<PipelinedParallelHeap<sim::Event, sim::EventOrder>> q(
      PipelinedParallelHeap<sim::Event, sim::EventOrder>(32), d);
  const sim::SimResult got = sim::run_sync_sim(q, m, 30.0, 32);
  EXPECT_TRUE(got.same_outcome(want))
      << "processed " << got.processed << " vs " << want.processed;
  EXPECT_GT(q.op_seq(), 0u);
}

}  // namespace
}  // namespace ph
