// Cross-structure fuzz: one randomized operation stream drives every exact
// priority-queue implementation in the library side by side; all deletion
// streams must be identical at every step. This is the broadest single
// correctness net in the suite — any divergence in any structure trips it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "baselines/binary_heap.hpp"
#include "baselines/calendar_queue.hpp"
#include "baselines/dary_heap.hpp"
#include "baselines/leftist_heap.hpp"
#include "baselines/pairing_heap.hpp"
#include "baselines/pq_concepts.hpp"
#include "baselines/skew_heap.hpp"
#include "core/parallel_heap.hpp"
#include "core/pipelined_heap.hpp"
#include "util/rng.hpp"
#include "workloads/distributions.hpp"

namespace ph {
namespace {

struct FixedKey {
  double operator()(std::uint64_t v) const { return from_fixed(v); }
};

TEST(CrossStructure, AllQueuesAgreeOnMonotoneStream) {
  // Monotone (event-set) stream so the calendar queue's contract holds:
  // inserted keys never precede the last deleted key.
  ParallelHeap<std::uint64_t> par2(8);
  ParallelHeap<std::uint64_t> par4(8, std::less<std::uint64_t>{}, 4);
  PipelinedParallelHeap<std::uint64_t> pipe(8);
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> bin;
  BatchAdapter<DaryHeap<std::uint64_t, 4>, std::uint64_t> dary;
  BatchAdapter<SkewHeap<std::uint64_t>, std::uint64_t> skew;
  BatchAdapter<PairingHeap<std::uint64_t>, std::uint64_t> pair;
  BatchAdapter<LeftistHeap<std::uint64_t>, std::uint64_t> leftist;
  BatchAdapter<CalendarQueue<std::uint64_t, FixedKey>, std::uint64_t> cal;

  Xoshiro256 rng(97);
  std::uint64_t clock = 0;
  std::vector<std::uint64_t> fresh;
  std::vector<std::uint64_t> want, got;
  for (int step = 0; step < 500; ++step) {
    fresh.clear();
    const std::size_t n = rng.next_below(12);
    for (std::size_t i = 0; i < n; ++i) {
      fresh.push_back(clock + to_fixed(draw_increment(rng, Dist::kExponential)));
    }
    const std::size_t k = rng.next_below(9);

    want.clear();
    bin.cycle(fresh, k, want);
    if (!want.empty()) clock = want.back();

    auto check = [&](auto& q, const char* name) {
      got.clear();
      q.cycle(fresh, k, got);
      ASSERT_EQ(got, want) << name << " step " << step;
    };
    check(par2, "parheap_d2");
    check(par4, "parheap_d4");
    check(pipe, "pipelined");
    check(dary, "dary4");
    check(skew, "skew");
    check(pair, "pairing");
    check(leftist, "leftist");
    check(cal, "calendar");
  }

  // Everyone drains to the same tail.
  want.clear();
  bin.delete_min_batch(bin.size(), want);
  auto drain_check = [&](auto& q, const char* name) {
    got.clear();
    q.delete_min_batch(want.size() + 1, got);
    ASSERT_EQ(got, want) << name;
  };
  drain_check(par2, "parheap_d2");
  drain_check(par4, "parheap_d4");
  drain_check(pipe, "pipelined");
  drain_check(dary, "dary4");
  drain_check(skew, "skew");
  drain_check(pair, "pairing");
  drain_check(leftist, "leftist");
  drain_check(cal, "calendar");
}

TEST(CrossStructure, ParallelHeapsAgreeOnArbitraryStream) {
  // Non-monotone stream (calendar excluded): the parallel-heap family and
  // the pointer heaps must still agree exactly.
  ParallelHeap<std::uint64_t> par2(16);
  ParallelHeap<std::uint64_t> par8(16, std::less<std::uint64_t>{}, 8);
  PipelinedParallelHeap<std::uint64_t> pipe(16);
  BatchAdapter<BinaryHeap<std::uint64_t>, std::uint64_t> bin;

  Xoshiro256 rng(101);
  std::vector<std::uint64_t> fresh, want, got;
  for (int step = 0; step < 800; ++step) {
    fresh.clear();
    const std::size_t n = rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) fresh.push_back(rng.next_below(1u << 14));
    const std::size_t k = rng.next_below(17);
    want.clear();
    bin.cycle(fresh, k, want);
    auto check = [&](auto& q, const char* name) {
      got.clear();
      q.cycle(fresh, k, got);
      ASSERT_EQ(got, want) << name << " step " << step;
    };
    check(par2, "parheap_d2");
    check(par8, "parheap_d8");
    check(pipe, "pipelined");
  }
}

}  // namespace
}  // namespace ph
