// Scheduler-service tests (src/svc/): the wire protocol codec, SchedulerCore
// exactness against a client-side oracle under a fake clock, durable cancel
// annihilation, DRR fair-share dispatch, backpressure, WAL-replay ledger
// recovery (including a synthesized kill between a poll's POP and CLOSE
// records — the unterminated-transaction path), and one end-to-end pass
// through the TCP server. Everything seeded and deterministic; the clock is
// a fn-pointer fake, never the wall.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dist/frame.hpp"
#include "persist/recovery.hpp"
#include "robustness/fault_matrix.hpp"
#include "svc/core.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"

namespace ph {
namespace {

using svc::Admit;
using svc::Job;
using svc::SchedulerCore;
using svc::SvcConfig;
using svc::SvcMsg;
using svc::SvcType;

std::atomic<std::uint64_t>& fake_now() {
  static std::atomic<std::uint64_t> now{1'000'000'000ull};
  return now;
}
std::uint64_t fake_clock() { return fake_now().load(std::memory_order_relaxed); }
void advance_ms(std::uint64_t ms) {
  fake_now().fetch_add(ms * 1'000'000ull, std::memory_order_relaxed);
}

SvcConfig small_cfg(const std::string& dir) {
  SvcConfig cfg;
  cfg.dir = dir;
  cfg.shards = 2;
  cfg.node_capacity = 8;
  cfg.producers = 2;
  cfg.clock = &fake_clock;
  return cfg;
}

struct Dir {
  std::string path;
  explicit Dir(const char* prefix)
      : path(persist::make_temp_dir(prefix)) {}
  ~Dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// ------------------------------------------------------------------ protocol

TEST(SvcProto, RoundTripsEveryType) {
  std::vector<std::uint8_t> wire;
  for (const SvcType t :
       {SvcType::kSchedule, SvcType::kCancel, SvcType::kPollDue, SvcType::kStats,
        SvcType::kShutdown, SvcType::kAck, SvcType::kOverloaded, SvcType::kError}) {
    SvcMsg m;
    m.type = t;
    m.tenant = 42;
    m.a = 1, m.b = 2, m.c = 3, m.d = 4;
    svc::encode_svc(m, wire);
    SvcMsg got;
    ASSERT_TRUE(svc::decode_svc(std::span<const std::uint8_t>(wire), got))
        << svc::svc_type_name(t);
    EXPECT_EQ(got.type, t);
    EXPECT_EQ(got.tenant, 42u);
    EXPECT_EQ(got.a, 1u);
    EXPECT_EQ(got.d, 4u);
  }
}

TEST(SvcProto, RoundTripsJobAndStatItems) {
  SvcMsg m;
  m.type = SvcType::kDueReply;
  m.a = 99;
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.deadline_ns = 1000u + static_cast<std::uint64_t>(i);
    j.id = static_cast<std::uint64_t>(i) * 7 + 1;
    j.tenant = static_cast<std::uint32_t>(i % 3);
    j.payload0 = 0xdeadbeef;
    m.jobs.push_back(j);
  }
  std::vector<std::uint8_t> wire;
  svc::encode_svc(m, wire);
  SvcMsg got;
  ASSERT_TRUE(svc::decode_svc(std::span<const std::uint8_t>(wire), got));
  ASSERT_EQ(got.jobs.size(), 5u);
  EXPECT_EQ(got.jobs[4].id, 29u);
  EXPECT_EQ(got.jobs[0].payload0, 0xdeadbeefu);

  SvcMsg s;
  s.type = SvcType::kStatsReply;
  svc::TenantStatRow r;
  r.tenant = 7;
  r.acked = 100;
  r.delivered = 60;
  s.stats.push_back(r);
  svc::encode_svc(s, wire);
  ASSERT_TRUE(svc::decode_svc(std::span<const std::uint8_t>(wire), got));
  ASSERT_EQ(got.stats.size(), 1u);
  EXPECT_EQ(got.stats[0].acked, 100u);
}

TEST(SvcProto, StrictDecodeRejectsSkew) {
  SvcMsg m;
  m.type = SvcType::kSchedule;
  std::vector<std::uint8_t> wire;
  svc::encode_svc(m, wire);
  SvcMsg got;
  // Trailing byte.
  auto longer = wire;
  longer.push_back(0);
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(longer), got));
  // Truncation.
  auto shorter = wire;
  shorter.pop_back();
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(shorter), got));
  // Unknown type.
  auto bad = wire;
  bad[0] = 0xEE;
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(bad), got));
  // Items on a type that carries none.
  auto items = wire;
  items[1 + 4 + 32] = 8;  // item_size field
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(items), got));
  // Item-size drift on a carrying type (peer with a different Job layout).
  SvcMsg due;
  due.type = SvcType::kDueReply;
  due.jobs.emplace_back();
  svc::encode_svc(due, wire);
  wire[1 + 4 + 32] = sizeof(Job) - 8;
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(wire), got));
  EXPECT_TRUE(svc::decode_svc(
      [&] {
        svc::encode_svc(due, wire);
        return std::span<const std::uint8_t>(wire);
      }(),
      got));
}

TEST(SvcProto, RejectsWrappingItemCountWithoutThrowing) {
  // A crafted kDueReply whose nitems makes the u64 product `nitems *
  // sizeof(Job)` wrap to exactly the bytes present: nitems = 2^61 + 1 gives
  // 40 * nitems == 5 * 2^64 + 40 == 40 (mod 2^64). A multiply-based length
  // check passes it and the follow-up resize(2^61 + 1) throws through the
  // server loop — decode must simply return false instead.
  SvcMsg due;
  due.type = SvcType::kDueReply;
  due.jobs.emplace_back();
  std::vector<std::uint8_t> wire;
  svc::encode_svc(due, wire);
  const std::size_t nitems_off = 1 + 4 + 4 * 8 + 4;  // type, tenant, a..d, item_size
  const std::uint64_t wrap = (1ull << 61) + 1;
  for (int i = 0; i < 8; ++i) {
    wire[nitems_off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(wrap >> (8 * i));
  }
  SvcMsg got;
  EXPECT_FALSE(svc::decode_svc(std::span<const std::uint8_t>(wire), got));
}

// ---------------------------------------------------------------------- core

TEST(SchedulerCore, SchedulesCommitAndDeliverInDeadlineOrder) {
  Dir dir("ph-svc-basic");
  SchedulerCore core(small_cfg(dir.path));
  std::uint64_t deadline = 0;
  EXPECT_EQ(core.schedule(1, 30'000'000, 103, 0, 0, &deadline), Admit::kOk);
  EXPECT_EQ(core.schedule(1, 10'000'000, 101, 7, 9, &deadline), Admit::kOk);
  EXPECT_EQ(core.schedule(2, 20'000'000, 102, 0, 0, &deadline), Admit::kOk);
  EXPECT_GT(core.commit(), 0u);
  EXPECT_TRUE(core.staged_fully_admitted());
  EXPECT_EQ(core.backlog(), 3u);

  std::vector<Job> due;
  // Nothing due yet.
  EXPECT_EQ(core.poll_due(10, due), svc::PollStatus::kOk);
  EXPECT_TRUE(due.empty());
  // 25ms later two are due, in deadline order, with payload intact.
  advance_ms(25);
  EXPECT_EQ(core.poll_due(10, due), svc::PollStatus::kOk);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].id, 101u);
  EXPECT_EQ(due[0].payload0, 7u);
  EXPECT_EQ(due[1].id, 102u);
  EXPECT_EQ(core.backlog(), 1u);
  advance_ms(25);
  due.clear();
  EXPECT_EQ(core.poll_due(10, due), svc::PollStatus::kOk);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].id, 103u);
  EXPECT_EQ(core.backlog(), 0u);

  const svc::SvcStats st = core.stats();
  EXPECT_EQ(st.acked, 3u);
  EXPECT_EQ(st.delivered, 3u);
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, SaturatesHugeDelaysInsteadOfWrapping) {
  Dir dir("ph-svc-sat");
  SchedulerCore core(small_cfg(dir.path));
  std::uint64_t deadline = 0;
  // A client-controlled delay near UINT64_MAX must clamp to the far future,
  // not wrap past `now` and deliver immediately.
  EXPECT_EQ(core.schedule(1, std::numeric_limits<std::uint64_t>::max() - 5, 1,
                          0, 0, &deadline),
            Admit::kOk);
  EXPECT_EQ(deadline, std::numeric_limits<std::uint64_t>::max());
  advance_ms(10);
  std::vector<Job> due;
  EXPECT_EQ(core.poll_due(10, due), svc::PollStatus::kOk);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(core.backlog(), 1u);
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, CancelAnnihilatesBeforeDelivery) {
  Dir dir("ph-svc-cancel");
  SchedulerCore core(small_cfg(dir.path));
  std::uint64_t d1 = 0, d2 = 0;
  ASSERT_EQ(core.schedule(5, 1'000'000, 1, 0, 0, &d1), Admit::kOk);
  ASSERT_EQ(core.schedule(5, 2'000'000, 2, 0, 0, &d2), Admit::kOk);
  ASSERT_EQ(core.cancel(5, d1, 1), Admit::kOk);
  advance_ms(10);
  std::vector<Job> due;
  EXPECT_EQ(core.poll_due(10, due), svc::PollStatus::kOk);
  ASSERT_EQ(due.size(), 1u);  // job 1 annihilated, job 2 delivered
  EXPECT_EQ(due[0].id, 2u);
  EXPECT_EQ(core.backlog(), 0u);
  const svc::SvcStats st = core.stats();
  EXPECT_EQ(st.acked, 2u);
  EXPECT_EQ(st.cancel_reqs, 1u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.delivered, 1u);
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, CancelAfterDeliveryLeavesTombstoneNotCorruption) {
  Dir dir("ph-svc-late-cancel");
  SchedulerCore core(small_cfg(dir.path));
  std::uint64_t d1 = 0;
  ASSERT_EQ(core.schedule(3, 1'000'000, 9, 0, 0, &d1), Admit::kOk);
  advance_ms(5);
  std::vector<Job> due;
  core.poll_due(10, due);
  ASSERT_EQ(due.size(), 1u);
  // Too late: the job is gone. The marker must pop harmlessly.
  ASSERT_EQ(core.cancel(3, d1, 9), Admit::kOk);
  advance_ms(5);
  due.clear();
  core.poll_due(10, due);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(core.backlog(), 0u);
  const svc::SvcStats st = core.stats();
  EXPECT_EQ(st.delivered, 1u);
  EXPECT_EQ(st.cancelled, 0u);  // nothing annihilated; tombstone parked
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, BackpressureShedsAtWallAndWatermark) {
  Dir dir("ph-svc-shed");
  SvcConfig cfg = small_cfg(dir.path);
  cfg.max_backlog = 64;
  cfg.overload_watermark = 16;
  cfg.admit_rate = 1.0;  // one token/sec: the gate bites immediately above
  cfg.burst = 4.0;       // the watermark once each tenant's burst is spent
  SchedulerCore core(cfg);
  std::uint64_t shed_at_watermark = 0, shed_at_wall = 0, ok = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Admit a = core.schedule(i % 2, 60'000'000'000ull, i + 1, 0, 0);
    if (a == Admit::kOk) {
      ++ok;
    } else if (core.backlog() >= cfg.max_backlog) {
      ++shed_at_wall;
    } else {
      ++shed_at_watermark;
    }
    core.commit();
  }
  EXPECT_GT(shed_at_watermark, 0u);  // token gate engaged above the watermark
  EXPECT_LE(core.backlog(), cfg.max_backlog);
  EXPECT_EQ(core.stats().shed, shed_at_watermark + shed_at_wall);
  EXPECT_EQ(core.stats().acked, ok);
  // Watermark + per-tenant bursts bound admissions: 16 free + 2 tenants * 4.
  EXPECT_LE(ok, 16u + 2u * 4u + 1u);
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, DrrDeliversWeightedFairShares) {
  Dir dir("ph-svc-drr");
  SvcConfig cfg = small_cfg(dir.path);
  cfg.weight = [](std::uint32_t t) {
    return t == 3 ? 4.0 : (t == 2 ? 2.0 : 1.0);  // weights 1,1,2,4 (sum 8)
  };
  // The popped window must keep every tenant's frontier in play for all 16
  // polls: the heavy tenant's frontier advances 4x faster than the light
  // ones', so a narrow window would run past it and starve it mid-test.
  cfg.poll_over_pull = 40;
  SchedulerCore core(cfg);
  const std::size_t kTenants = 4, kJobs = 800;
  const std::uint64_t base = fake_clock();
  // Interleaved identical deadlines per rank, so the popped frontier always
  // holds all four tenants and fairness is genuinely DRR's doing.
  for (std::size_t j = 0; j < kJobs; ++j) {
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      ASSERT_EQ(core.schedule(t, j * 1000, t * 1'000'000 + j, 0, 0), Admit::kOk);
    }
  }
  core.commit();
  advance_ms(3'600'000);  // everything due
  (void)base;

  std::map<std::uint32_t, std::size_t> delivered;
  std::vector<Job> due;
  const std::size_t kPolls = 16, kMax = 50;
  for (std::size_t p = 0; p < kPolls; ++p) {
    due.clear();
    ASSERT_EQ(core.poll_due(kMax, due), svc::PollStatus::kOk);
    for (const Job& j : due) ++delivered[j.tenant];
  }
  const double total = static_cast<double>(kPolls * kMax);
  const double weights[] = {1.0, 1.0, 2.0, 4.0};
  for (std::uint32_t t = 0; t < kTenants; ++t) {
    const double expect = total * weights[t] / 8.0;
    const double got = static_cast<double>(delivered[t]);
    EXPECT_NEAR(got, expect, expect * 0.10)
        << "tenant " << t << " delivered " << got << " expected " << expect;
  }
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

/// Randomized differential: schedule/cancel/poll against a client-side
/// oracle. Every acked uncancelled job is delivered exactly once; cancelled
/// jobs at most once; conservation holds at every checkpointed step.
TEST(SchedulerCore, RandomizedExactnessVsOracle) {
  Dir dir("ph-svc-oracle");
  SchedulerCore core(small_cfg(dir.path));
  std::uint64_t rng = 0xABCDEF12345ull;
  auto rnd = [&rng]() {
    std::uint64_t z = (rng += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> seen;  // -> deliveries
  std::set<std::pair<std::uint32_t, std::uint64_t>> cancelled;
  std::vector<Job> due;
  std::string why;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint32_t tenant = static_cast<std::uint32_t>(rnd() % 16);
    std::uint64_t deadline = 0;
    ASSERT_EQ(core.schedule(tenant, rnd() % 40'000'000, i + 1, rnd(), 0, &deadline),
              Admit::kOk);
    seen[{tenant, i + 1}] = 0;
    if (rnd() % 5 == 0) {
      ASSERT_EQ(core.cancel(tenant, deadline, i + 1), Admit::kOk);
      cancelled.insert({tenant, i + 1});
    }
    if (i % 16 == 15) {
      advance_ms(rnd() % 20);
      due.clear();
      core.poll_due(1 + rnd() % 32, due);
      for (const Job& j : due) {
        auto it = seen.find({j.tenant, j.id});
        ASSERT_NE(it, seen.end()) << "delivered a job never scheduled";
        ASSERT_EQ(++it->second, 1) << "job delivered twice";
        ASSERT_EQ(cancelled.count({j.tenant, j.id}), 0u)
            << "pre-delivery cancel failed to annihilate";
      }
      if (i % 256 == 255) {
        ASSERT_TRUE(core.check_invariants(&why)) << why;
      }
    }
  }
  advance_ms(3'600'000);
  for (int iter = 0; iter < 1000 && core.backlog() > 0; ++iter) {
    due.clear();
    core.poll_due(64, due);
    for (const Job& j : due) {
      auto it = seen.find({j.tenant, j.id});
      ASSERT_NE(it, seen.end());
      ASSERT_EQ(++it->second, 1);
      ASSERT_EQ(cancelled.count({j.tenant, j.id}), 0u);
    }
  }
  EXPECT_EQ(core.backlog(), 0u);
  for (const auto& [key, times] : seen) {
    if (cancelled.count(key) == 0) {
      ASSERT_EQ(times, 1) << "job lost: tenant " << key.first << " id "
                          << key.second;
    } else {
      ASSERT_EQ(times, 0);
    }
  }
  const svc::SvcStats st = core.stats();
  EXPECT_EQ(st.acked, 2000u);
  EXPECT_EQ(st.acked, st.delivered + st.cancelled);
  ASSERT_TRUE(core.check_invariants(&why)) << why;
}

// ------------------------------------------------------------------ recovery

TEST(SchedulerCore, RecoveryReplaysLedgerBitExactly) {
  Dir dir("ph-svc-recover");
  std::vector<svc::TenantStatRow> before;
  std::size_t backlog_before = 0;
  std::uint64_t seq_before = 0;
  {
    SchedulerCore core(small_cfg(dir.path));
    std::uint64_t rng = 77;
    auto rnd = [&rng]() { return rng = rng * 6364136223846793005ull + 1442695040888963407ull; };
    std::vector<Job> due;
    for (std::uint64_t i = 0; i < 600; ++i) {
      const std::uint32_t t = static_cast<std::uint32_t>(rnd() % 8);
      std::uint64_t deadline = 0;
      ASSERT_EQ(core.schedule(t, rnd() % 30'000'000, i + 1, 0, 0, &deadline),
                Admit::kOk);
      if (rnd() % 6 == 0) ASSERT_EQ(core.cancel(t, deadline, i + 1), Admit::kOk);
      if (i % 32 == 31) {
        advance_ms(10);
        core.poll_due(16, due);
        due.clear();
      }
    }
    core.commit();
    before = core.stat_rows();
    backlog_before = core.backlog();
    seq_before = core.durable().op_seq();
  }  // no checkpoint, no graceful anything: destruction == the process dying

  SchedulerCore core(small_cfg(dir.path));
  EXPECT_EQ(core.durable().op_seq(), seq_before);
  EXPECT_EQ(core.backlog(), backlog_before);
  const auto after = core.stat_rows();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].tenant, before[i].tenant);
    EXPECT_EQ(after[i].acked, before[i].acked) << "tenant " << before[i].tenant;
    EXPECT_EQ(after[i].cancel_reqs, before[i].cancel_reqs);
    EXPECT_EQ(after[i].delivered, before[i].delivered);
    EXPECT_EQ(after[i].cancelled, before[i].cancelled);
    EXPECT_EQ(after[i].requeued, before[i].requeued);
  }
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, KillBetweenPopAndCloseRequeuesInFlight) {
  Dir dir("ph-svc-torn-txn");
  std::size_t backlog_before = 0;
  std::uint64_t acked_before = 0;
  {
    SchedulerCore core(small_cfg(dir.path));
    for (std::uint64_t i = 0; i < 40; ++i) {
      ASSERT_EQ(core.schedule(i % 4, 1'000'000, i + 1, 0, 0), Admit::kOk);
    }
    core.commit();
    backlog_before = core.backlog();
    acked_before = core.stats().acked;
  }
  // Synthesize the torn transaction: append POP records (cycle k>0) through
  // a RAW DurableHeap on the same directory — and "die" before any CLOSE.
  // Two records, because a real wide poll window is a *run* of POP records
  // (one per node_capacity) stacked under a single CLOSE.
  {
    persist::DurableOptions opt;
    opt.dir = dir.path;
    opt.checkpoint_interval = 0;
    opt.checkpoint_on_open = false;
    ShardedHeap<Job, svc::JobLess>::Config sc;
    sc.shards = 2;
    persist::DurableHeap<ShardedHeap<Job, svc::JobLess>> raw(
        ShardedHeap<Job, svc::JobLess>(8, sc, svc::JobLess{}),
        std::move(opt));
    std::vector<Job> popped;
    ASSERT_EQ(raw.cycle({}, 8, popped), 8u);
    popped.clear();
    ASSERT_EQ(raw.cycle({}, 8, popped), 8u);
  }
  // Recovery: the 16 popped jobs are an unterminated transaction — no
  // client saw them, so they must be requeued, not lost.
  SchedulerCore core(small_cfg(dir.path));
  EXPECT_EQ(core.stats().recovered_inflight, 16u);
  EXPECT_EQ(core.backlog(), backlog_before);  // all 40 still queued
  EXPECT_EQ(core.stats().acked, acked_before);
  advance_ms(10);
  std::vector<Job> due;
  std::set<std::uint64_t> ids;
  for (int iter = 0; iter < 100 && core.backlog() > 0; ++iter) {
    due.clear();
    core.poll_due(16, due);
    for (const Job& j : due) {
      EXPECT_TRUE(ids.insert(j.id).second) << "job " << j.id << " delivered twice";
    }
  }
  EXPECT_EQ(ids.size(), 40u);  // exactly once each, despite the torn poll
  std::string why;
  EXPECT_TRUE(core.check_invariants(&why)) << why;
}

TEST(SchedulerCore, RefusesDirectoryWithForeignCheckpoint) {
  Dir dir("ph-svc-foreign");
  {
    // Someone else's DurableHeap, WITH checkpoints: poison for the ledger.
    persist::DurableOptions opt;
    opt.dir = dir.path;
    opt.checkpoint_interval = 1;
    ShardedHeap<Job, svc::JobLess>::Config sc;
    sc.shards = 2;
    persist::DurableHeap<ShardedHeap<Job, svc::JobLess>> raw(
        ShardedHeap<Job, svc::JobLess>(8, sc, svc::JobLess{}),
        std::move(opt));
    std::vector<Job> fresh(3);
    std::vector<Job> out;
    raw.cycle(std::span<const Job>(fresh), 0, out);
  }
  EXPECT_THROW(
      {
        SchedulerCore c(small_cfg(dir.path));
        (void)c;
      },
      persist::CorruptStateError);
}

// ---------------------------------------------------------------- tcp server

TEST(SvcServer, EndToEndScheduleAckPollShutdown) {
  Dir dir("ph-svc-server");
  svc::ServerConfig cfg;
  cfg.core = small_cfg(dir.path);
  cfg.core.clock = nullptr;  // the server runs on the wall clock
  cfg.port = 0;
  cfg.watchdog = false;
  svc::Server server(cfg);
  const std::uint16_t port = server.port();
  std::thread loop([&server] { server.run(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)), 0);

  dist::FrameParser parser;
  std::vector<std::uint8_t> enc, wire;
  auto send_msg = [&](const SvcMsg& m) {
    svc::encode_svc(m, enc);
    ASSERT_TRUE(dist::send_frame_fd(fd, std::span<const std::uint8_t>(enc), wire));
  };
  auto recv_msg = [&](SvcMsg& m) {
    std::vector<std::uint8_t> payload;
    while (parser.next(payload) != dist::FrameStatus::kFrame) {
      std::uint8_t chunk[4096];
      const ::ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(r, 0);
      parser.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
    }
    ASSERT_TRUE(svc::decode_svc(std::span<const std::uint8_t>(payload), m));
  };

  // Schedule 3 immediate jobs; acks arrive after the group commit.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    SvcMsg m;
    m.type = SvcType::kSchedule;
    m.tenant = 9;
    m.a = 0;  // due immediately
    m.b = id;
    m.c = id * 100;
    send_msg(m);
  }
  for (int i = 0; i < 3; ++i) {
    SvcMsg ack;
    recv_msg(ack);
    ASSERT_EQ(ack.type, SvcType::kAck);
    EXPECT_GE(ack.b, 1u);
    EXPECT_LE(ack.b, 3u);
  }
  // Poll them back.
  std::set<std::uint64_t> got;
  for (int tries = 0; tries < 50 && got.size() < 3; ++tries) {
    SvcMsg p;
    p.type = SvcType::kPollDue;
    p.a = 8;
    send_msg(p);
    SvcMsg rep;
    recv_msg(rep);
    ASSERT_EQ(rep.type, SvcType::kDueReply);
    for (const Job& j : rep.jobs) {
      EXPECT_EQ(j.tenant, 9u);
      EXPECT_TRUE(got.insert(j.id).second) << "duplicate delivery";
    }
  }
  EXPECT_EQ(got.size(), 3u);
  // Stats reflect the ledger.
  SvcMsg q;
  q.type = SvcType::kStats;
  send_msg(q);
  SvcMsg stats;
  recv_msg(stats);
  ASSERT_EQ(stats.type, SvcType::kStatsReply);
  ASSERT_EQ(stats.stats.size(), 1u);
  EXPECT_EQ(stats.stats[0].acked, 3u);
  EXPECT_EQ(stats.stats[0].delivered, 3u);
  // Drain: the shutdown ack is the last frame out.
  SvcMsg bye;
  bye.type = SvcType::kShutdown;
  bye.a = 1;
  send_msg(bye);
  SvcMsg ack;
  recv_msg(ack);
  EXPECT_EQ(ack.type, SvcType::kAck);
  loop.join();
  ::close(fd);
}

TEST(SvcServer, MalformedFrameGetsErrorThenClose) {
  Dir dir("ph-svc-badframe");
  svc::ServerConfig cfg;
  cfg.core = small_cfg(dir.path);
  cfg.core.clock = nullptr;
  cfg.port = 0;
  cfg.watchdog = false;
  svc::Server server(cfg);
  const std::uint16_t port = server.port();
  std::thread loop([&server] { server.run(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)), 0);
  // A well-framed but undecodable payload: kError, then the server hangs up.
  const std::vector<std::uint8_t> junk = {0x00, 0x01, 0x02};
  std::vector<std::uint8_t> wire;
  ASSERT_TRUE(dist::send_frame_fd(fd, std::span<const std::uint8_t>(junk), wire));
  dist::FrameParser parser;
  SvcMsg rep;
  bool got_error = false, closed = false;
  std::vector<std::uint8_t> payload;
  for (int i = 0; i < 100 && !closed; ++i) {
    std::uint8_t chunk[4096];
    const ::ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) {
      closed = true;
      break;
    }
    parser.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
    while (parser.next(payload) == dist::FrameStatus::kFrame) {
      ASSERT_TRUE(svc::decode_svc(std::span<const std::uint8_t>(payload), rep));
      if (rep.type == SvcType::kError) got_error = true;
    }
  }
  EXPECT_TRUE(got_error);
  EXPECT_TRUE(closed);
  ::close(fd);
  server.stop();
  loop.join();
}

}  // namespace
}  // namespace ph
