// Tests for the insert-concurrent fine-grained heap: serial exactness,
// invariants after concurrent insertion storms, multiset preservation under
// mixed churn, and capacity behaviour.
#include "baselines/concurrent_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace ph {
namespace {

using Heap = InsertConcurrentHeap<std::uint64_t>;

TEST(InsertConcurrentHeap, SerialSortsRandomInput) {
  Heap h(4096);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> in(4000);
  for (auto& x : in) x = rng.next_below(1u << 20);
  for (auto x : in) h.push(x);
  EXPECT_TRUE(h.check_invariants());
  std::sort(in.begin(), in.end());
  std::uint64_t v = 0;
  for (auto want : in) {
    ASSERT_TRUE(h.try_pop(v));
    ASSERT_EQ(v, want);
  }
  EXPECT_FALSE(h.try_pop(v));
}

TEST(InsertConcurrentHeap, CapacityBound) {
  Heap h(3);
  EXPECT_TRUE(h.try_push(1));
  EXPECT_TRUE(h.try_push(2));
  EXPECT_TRUE(h.try_push(3));
  EXPECT_FALSE(h.try_push(4));
  std::uint64_t v;
  EXPECT_TRUE(h.try_pop(v));
  EXPECT_TRUE(h.try_push(4));
}

TEST(InsertConcurrentHeap, ConcurrentInsertionStorm) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Heap h(kThreads * kPerThread);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) h.push(rng.next_below(1u << 24));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(h.check_invariants());

  // Drained output equals the pushed multiset, sorted.
  std::vector<std::uint64_t> want;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(100 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) want.push_back(rng.next_below(1u << 24));
  }
  std::sort(want.begin(), want.end());
  std::uint64_t v = 0;
  for (auto exp : want) {
    ASSERT_TRUE(h.try_pop(v));
    ASSERT_EQ(v, exp);
  }
}

TEST(InsertConcurrentHeap, MixedChurnPreservesMultiset) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  Heap h(kThreads * kPerThread);
  std::vector<std::vector<std::uint64_t>> popped(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(200 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        h.push(rng.next_below(1u << 20));
        if (i % 2 == 1) {
          std::uint64_t v;
          if (h.try_pop(v)) popped[static_cast<std::size_t>(t)].push_back(v);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(h.check_invariants());

  std::vector<std::uint64_t> all;
  for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
  std::uint64_t v;
  while (h.try_pop(v)) all.push_back(v);
  std::vector<std::uint64_t> want;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(200 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) want.push_back(rng.next_below(1u << 20));
  }
  std::sort(all.begin(), all.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(all, want);
}

TEST(InsertConcurrentHeap, PopsAreMonotoneUnderConcurrentGrowth) {
  // While one thread pops, another pushes ever-larger keys: the popper's
  // stream must be non-decreasing (new keys never undercut the current min).
  Heap h(1 << 16);
  for (std::uint64_t i = 0; i < 64; ++i) h.push(i);
  std::atomic<bool> done{false};
  std::thread pusher([&] {
    for (std::uint64_t k = 1000; k < 6000; ++k) h.push(k);
    done.store(true);
  });
  std::uint64_t prev = 0;
  std::uint64_t v = 0;
  while (!done.load() || h.try_pop(v)) {
    if (h.try_pop(v)) {
      ASSERT_GE(v, prev);
      prev = v;
    }
  }
  pusher.join();
}

TEST(InsertConcurrentHeap, CountersTrackOps) {
  Heap h(64);
  h.push(5);
  h.push(3);
  std::uint64_t v;
  h.try_pop(v);
  EXPECT_EQ(h.pushes(), 2u);
  EXPECT_EQ(h.pops(), 1u);
}

}  // namespace
}  // namespace ph
