// Tests for the extra LP network topologies and their use under the
// simulators (each must remain differential-exact vs the serial reference).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "core/parallel_heap.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/serial_sim.hpp"
#include "sim/sync_sim.hpp"

namespace ph::sim {
namespace {

TEST(Ring, ChainStructure) {
  const Topology t = make_ring(5);
  EXPECT_EQ(t.num_lps, 5u);
  EXPECT_EQ(t.out_degree, 1u);
  for (std::size_t lp = 0; lp < 5; ++lp) {
    EXPECT_EQ(t.out(lp)[0], (lp + 1) % 5);
  }
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  const Topology t = make_hypercube(4);
  EXPECT_EQ(t.num_lps, 16u);
  EXPECT_EQ(t.out_degree, 4u);
  for (std::size_t lp = 0; lp < 16; ++lp) {
    std::set<std::uint32_t> nbrs;
    for (auto d : t.out(lp)) {
      const std::uint32_t diff = static_cast<std::uint32_t>(lp) ^ d;
      EXPECT_EQ(diff & (diff - 1), 0u) << "not a power of two";
      EXPECT_NE(diff, 0u);
      nbrs.insert(d);
    }
    EXPECT_EQ(nbrs.size(), 4u);
  }
}

TEST(KaryTree, ChildrenIndices) {
  const Topology t = make_kary_tree(10, 3);
  EXPECT_EQ(t.out_degree, 3u);
  EXPECT_EQ(t.out(0)[0], 1u);
  EXPECT_EQ(t.out(0)[1], 2u);
  EXPECT_EQ(t.out(0)[2], 3u);
  EXPECT_EQ(t.out(1)[0], 4u);
  // Overflow wraps into range.
  for (auto d : t.out(9)) EXPECT_LT(d, 10u);
}

class TopologySim : public ::testing::TestWithParam<int> {};

TEST_P(TopologySim, SyncSimExactOnAllTopologies) {
  Topology topo;
  switch (GetParam()) {
    case 0: topo = make_ring(64); break;
    case 1: topo = make_hypercube(6); break;
    case 2: topo = make_kary_tree(100, 3); break;
    default: topo = make_torus(8, 8); break;
  }
  ModelConfig mc;
  mc.seed = 17;
  const Model m(topo, mc);
  const SimResult want = run_serial_sim(m, 25.0);
  EXPECT_GT(want.processed, topo.num_lps);
  ParallelHeap<Event, EventOrder> q(32);
  const SimResult got = run_sync_sim(q, m, 25.0, 32);
  EXPECT_TRUE(got.same_outcome(want));
}

std::string topology_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "ring";
    case 1: return "hypercube";
    case 2: return "kary";
    default: return "torus";
  }
}

INSTANTIATE_TEST_SUITE_P(All, TopologySim, ::testing::Values(0, 1, 2, 3),
                         topology_name);

}  // namespace
}  // namespace ph::sim
