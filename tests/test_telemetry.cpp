// Tests for the telemetry subsystem: log-bucketed histogram (boundaries and
// percentile math vs a sorted-vector oracle), lock-free per-thread counter
// merge under the thread pool, trace-ring bounding, and the Chrome
// trace_event exporter (parses; balanced B/E events per thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <vector>

#include "core/engine.hpp"
#include "util/mini_json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ph::telemetry {
namespace {

using hist_detail::bucket_hi;
using hist_detail::bucket_index;
using hist_detail::bucket_lo;
using hist_detail::kNumBuckets;
using hist_detail::kSub;

TEST(LogHistogram, SmallValuesBinExactly) {
  for (std::uint64_t v = 0; v < kSub; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lo(v), v);
    EXPECT_EQ(bucket_hi(v), v);
  }
}

TEST(LogHistogram, BucketBoundsContainValue) {
  Xoshiro256 rng(17);
  std::vector<std::uint64_t> probes = {16,    17,         31,    32,  33,
                                       1023,  1024,       1025,  1u << 20,
                                       (1ull << 40) + 12345, UINT64_MAX};
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform probe so every exponent range is exercised.
    const unsigned shift = static_cast<unsigned>(rng.next_below(64));
    probes.push_back(rng() >> shift);
  }
  for (const std::uint64_t v : probes) {
    const std::size_t b = bucket_index(v);
    ASSERT_LT(b, kNumBuckets);
    EXPECT_LE(bucket_lo(b), v);
    EXPECT_GE(bucket_hi(b), v);
    // Relative bucket width bound: width ≤ lo/16 above the linear range.
    if (v >= kSub) {
      EXPECT_LE(bucket_hi(b) - bucket_lo(b) + 1, bucket_lo(b) / kSub);
    }
  }
}

TEST(LogHistogram, BucketsPartitionTheAxis) {
  // Adjacent buckets must tile [0, 2^64) with no gaps or overlaps.
  for (std::size_t b = 0; b + 1 < kNumBuckets; ++b) {
    ASSERT_EQ(bucket_hi(b) + 1, bucket_lo(b + 1)) << "gap after bucket " << b;
  }
  EXPECT_EQ(bucket_hi(kNumBuckets - 1), UINT64_MAX);
}

TEST(LogHistogram, PercentileMatchesSortedOracle) {
  Xoshiro256 rng(23);
  LogHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    const unsigned shift = 20 + static_cast<unsigned>(rng.next_below(30));
    const std::uint64_t v = rng() >> shift;
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count(), samples.size());
  EXPECT_EQ(snap.min(), samples.front());
  EXPECT_EQ(snap.max(), samples.back());
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    const std::uint64_t oracle = samples[rank - 1];
    const std::uint64_t got = snap.percentile(p);
    // The histogram returns the bucket upper bound: ≥ the oracle and within
    // one bucket width (≤ 1/16 relative) above it.
    EXPECT_GE(got, oracle) << "p=" << p;
    EXPECT_LE(got, oracle + oracle / kSub + 1) << "p=" << p;
  }
}

TEST(LogHistogram, PercentilesStayInsideObservedEnvelope) {
  // Regression: percentile() used to return the raw bucket upper edge, so
  // p0/p-low could undershoot the recorded minimum (all samples in one
  // bucket, min above the bucket's midpoint) and tiny-count histograms
  // reported values outside [min, max].
  LogHistogram h;
  h.record(1000);  // bucket [960, 1023] — upper edge above, lower edge below
  h.record(1010);
  const HistogramSnapshot snap = h.snapshot();
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    const std::uint64_t v = snap.percentile(p);
    EXPECT_GE(v, snap.min()) << "p=" << p;
    EXPECT_LE(v, snap.max()) << "p=" << p;
  }
  // p0 is by definition the smallest recorded sample.
  EXPECT_EQ(snap.percentile(0.0), 1000u);

  // Single-sample histogram: every percentile is that sample.
  LogHistogram one;
  one.record(777);
  const HistogramSnapshot s1 = one.snapshot();
  for (const double p : {0.0, 50.0, 100.0}) EXPECT_EQ(s1.percentile(p), 777u);
}

TEST(LogHistogram, MergeEqualsCombinedRecording) {
  Xoshiro256 rng(29);
  LogHistogram a, b, combined;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 20);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  HistogramSnapshot merged;
  a.merge_into(merged);
  b.merge_into(merged);
  const HistogramSnapshot want = combined.snapshot();
  EXPECT_EQ(merged.count(), want.count());
  EXPECT_EQ(merged.min(), want.min());
  EXPECT_EQ(merged.max(), want.max());
  EXPECT_DOUBLE_EQ(merged.sum(), want.sum());
  for (const double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(merged.percentile(p), want.percentile(p));
  }
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.record(42);
  h.record(1u << 18);
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().percentile(99), 0u);
}

TEST(TraceRing, BoundedWithDropCount) {
  TraceRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ring.push(TraceSpan{i, i * 10, i * 10 + 5});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto spans = ring.ordered();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first, and the survivors are the newest four.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].phase, 6u + i);
  }
  ring.reset();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(JsonWriter, EscapesAndNests) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("plain", "x");
  w.kv("quote\"back\\slash", "tab\tnewline\nctl\x01");
  w.key("arr").begin_array().value(std::uint64_t{7}).value(1.5).value(true).null().end_array();
  w.end_object();
  EXPECT_EQ(w.depth(), 0u);
  const auto doc = minijson::parse(os.str());
  EXPECT_EQ(doc.at("plain").str(), "x");
  EXPECT_EQ(doc.at("quote\"back\\slash").str(), "tab\tnewline\nctl\x01");
  ASSERT_EQ(doc.at("arr").array().size(), 4u);
  EXPECT_EQ(doc.at("arr").array()[0].number(), 7.0);
  EXPECT_EQ(doc.at("arr").array()[1].number(), 1.5);
}

TEST(Registry, ConcurrentCounterMergeIsExact) {
  Registry& reg = Registry::instance();
  reg.reset();
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  {
    ThreadTeam team(kThreads, /*pin=*/false, "ctr");
    team.run([&](unsigned) {
      ThreadSlot& slot = reg.local();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        slot.add(Counter::kThinkItems, 1);
        if (i % 64 == 0) slot.record(Phase::kThink, i);
      }
    });
    // Merge while the workers still exist (parked): counts must be exact at
    // this quiescent point, concurrent with the slots being registered.
    const MetricsSnapshot snap = reg.collect();
    EXPECT_EQ(snap.get(Counter::kThinkItems), kThreads * kPerThread);
    EXPECT_EQ(snap.phase(Phase::kThink).count(),
              kThreads * ((kPerThread + 63) / 64));
  }
  // Per-thread breakdown: kThreads slots saw exactly kPerThread each.
  const MetricsSnapshot snap = reg.collect();
  unsigned slots_with_counts = 0;
  for (const auto& t : snap.threads) {
    const std::uint64_t c =
        t.counters[static_cast<std::size_t>(Counter::kThinkItems)];
    if (c != 0) {
      ++slots_with_counts;
      EXPECT_EQ(c, kPerThread);
    }
  }
  EXPECT_EQ(slots_with_counts, kThreads);
  reg.reset();
}

TEST(Registry, CollectWhileWritersRunIsMonotone) {
  Registry& reg = Registry::instance();
  reg.reset();
  constexpr unsigned kThreads = 4;
  ThreadTeam team(kThreads, false, "mono");
  // begin() keeps only a pointer to the task; it must outlive wait().
  const std::function<void(unsigned)> task = [](unsigned) {
    ThreadSlot& slot = Registry::instance().local();
    for (int i = 0; i < 200000; ++i) slot.add(Counter::kCycles, 1);
  };
  team.begin(task);
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const std::uint64_t now = reg.collect().get(Counter::kCycles);
    EXPECT_GE(now, last);
    last = now;
  }
  team.wait();
  EXPECT_EQ(reg.collect().get(Counter::kCycles), kThreads * 200000ull);
  reg.reset();
}

TEST(MetricsSnapshot, JsonRoundTrips) {
  Registry& reg = Registry::instance();
  reg.reset();
  ThreadSlot& slot = reg.local();
  slot.add(Counter::kCycles, 3);
  for (std::uint64_t v : {100u, 200u, 300u, 400u}) slot.record(Phase::kRootWork, v);
  std::ostringstream os;
  JsonWriter w(os);
  reg.collect().write_json(w);
  const auto doc = minijson::parse(os.str());
  EXPECT_EQ(doc.at("counters").at("cycles").number(), 3.0);
  const auto& root = doc.at("phases").at("root_work");
  EXPECT_EQ(root.at("count").number(), 4.0);
  EXPECT_EQ(root.at("min_ns").number(), 100.0);
  EXPECT_GE(root.at("p99_ns").number(), 400.0);
  EXPECT_TRUE(doc.at("threads").is_array());
  reg.reset();
}

// --- Chrome trace golden check: run the real engine, export, parse, and
// verify the event grammar (balanced, chronologically ordered B/E per tid).
TEST(ChromeTrace, EngineRunExportsBalancedSpans) {
  Registry::instance().reset();
  EngineConfig cfg;
  cfg.node_capacity = 64;
  cfg.think_threads = 2;
  cfg.maintenance_threads = 1;
  ParallelHeapEngine<std::uint64_t> eng(cfg);
  std::vector<std::uint64_t> init(1024);
  Xoshiro256 rng(41);
  for (auto& x : init) x = rng.next_below(1u << 20);
  eng.seed(init);
  eng.run(
      [](unsigned, std::span<const std::uint64_t> mine,
         std::span<const std::uint64_t>, std::vector<std::uint64_t>& out) {
        for (std::uint64_t v : mine) out.push_back(v + 1 + v % 97);
      },
      /*max_items=*/8192);

  std::ostringstream os;
  write_chrome_trace(os);
  const auto doc = minijson::parse(os.str());
  const auto& events = doc.at("traceEvents").array();

  const std::set<std::string> known = {
      "root_work", "odd_half_step", "even_half_step", "think",
      "think_stall", "steal",        "maint_service"};
  std::map<double, std::uint64_t> open_per_tid;  // tid → nesting depth
  std::map<double, double> last_ts;
  std::uint64_t begins = 0, ends = 0;
  std::set<std::string> seen_names;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").str();
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "M");
    if (ph == "M") continue;
    const double tid = e.at("tid").number();
    const double ts = e.at("ts").number();
    EXPECT_TRUE(known.count(e.at("name").str())) << e.at("name").str();
    seen_names.insert(e.at("name").str());
    // Per-thread events must be chronological for B/E matching to be sound.
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      ++open_per_tid[tid];
      ++begins;
    } else {
      ASSERT_GT(open_per_tid[tid], 0u) << "E without matching B on tid " << tid;
      --open_per_tid[tid];
      ++ends;
    }
  }
  EXPECT_EQ(begins, ends);
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0u) << "unbalanced spans on tid " << tid;
  }
#if PH_TELEMETRY_ENABLED
  EXPECT_GT(begins, 0u);
  EXPECT_TRUE(seen_names.count("root_work"));
  EXPECT_TRUE(seen_names.count("think"));
  EXPECT_TRUE(seen_names.count("think_stall"));
  EXPECT_TRUE(seen_names.count("maint_service"));
  // Latency histograms got the same phases.
  const MetricsSnapshot snap = Registry::instance().collect();
  EXPECT_GT(snap.phase(Phase::kRootWork).count(), 0u);
  EXPECT_GT(snap.phase(Phase::kThink).count(), 0u);
  EXPECT_GT(snap.get(Counter::kCycles), 0u);
  EXPECT_EQ(snap.get(Counter::kItemsDeleted), snap.get(Counter::kThinkItems));
#else
  EXPECT_EQ(begins, 0u);
#endif
  Registry::instance().reset();
}

}  // namespace
}  // namespace ph::telemetry
