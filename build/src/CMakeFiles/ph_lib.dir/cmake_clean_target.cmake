file(REMOVE_RECURSE
  "libph_lib.a"
)
