# Empty dependencies file for ph_lib.
# This may be replaced when dependencies are built.
