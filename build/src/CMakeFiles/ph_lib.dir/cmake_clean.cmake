file(REMOVE_RECURSE
  "CMakeFiles/ph_lib.dir/sim/network.cpp.o"
  "CMakeFiles/ph_lib.dir/sim/network.cpp.o.d"
  "CMakeFiles/ph_lib.dir/util/affinity.cpp.o"
  "CMakeFiles/ph_lib.dir/util/affinity.cpp.o.d"
  "CMakeFiles/ph_lib.dir/util/stats.cpp.o"
  "CMakeFiles/ph_lib.dir/util/stats.cpp.o.d"
  "libph_lib.a"
  "libph_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
