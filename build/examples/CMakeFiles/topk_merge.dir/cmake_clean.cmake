file(REMOVE_RECURSE
  "CMakeFiles/topk_merge.dir/topk_merge.cpp.o"
  "CMakeFiles/topk_merge.dir/topk_merge.cpp.o.d"
  "topk_merge"
  "topk_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
