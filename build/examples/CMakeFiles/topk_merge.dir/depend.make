# Empty dependencies file for topk_merge.
# This may be replaced when dependencies are built.
