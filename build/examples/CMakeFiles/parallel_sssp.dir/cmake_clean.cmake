file(REMOVE_RECURSE
  "CMakeFiles/parallel_sssp.dir/parallel_sssp.cpp.o"
  "CMakeFiles/parallel_sssp.dir/parallel_sssp.cpp.o.d"
  "parallel_sssp"
  "parallel_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
