# Empty compiler generated dependencies file for parallel_sssp.
# This may be replaced when dependencies are built.
