file(REMOVE_RECURSE
  "CMakeFiles/des_queueing_network.dir/des_queueing_network.cpp.o"
  "CMakeFiles/des_queueing_network.dir/des_queueing_network.cpp.o.d"
  "des_queueing_network"
  "des_queueing_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_queueing_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
