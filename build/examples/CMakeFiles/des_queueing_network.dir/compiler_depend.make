# Empty compiler generated dependencies file for des_queueing_network.
# This may be replaced when dependencies are built.
