file(REMOVE_RECURSE
  "CMakeFiles/test_sorted_ops.dir/test_sorted_ops.cpp.o"
  "CMakeFiles/test_sorted_ops.dir/test_sorted_ops.cpp.o.d"
  "test_sorted_ops"
  "test_sorted_ops.pdb"
  "test_sorted_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorted_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
