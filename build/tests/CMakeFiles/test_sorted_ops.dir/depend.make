# Empty dependencies file for test_sorted_ops.
# This may be replaced when dependencies are built.
