file(REMOVE_RECURSE
  "CMakeFiles/test_cross_structure.dir/test_cross_structure.cpp.o"
  "CMakeFiles/test_cross_structure.dir/test_cross_structure.cpp.o.d"
  "test_cross_structure"
  "test_cross_structure.pdb"
  "test_cross_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
