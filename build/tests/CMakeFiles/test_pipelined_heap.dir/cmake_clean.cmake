file(REMOVE_RECURSE
  "CMakeFiles/test_pipelined_heap.dir/test_pipelined_heap.cpp.o"
  "CMakeFiles/test_pipelined_heap.dir/test_pipelined_heap.cpp.o.d"
  "test_pipelined_heap"
  "test_pipelined_heap.pdb"
  "test_pipelined_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipelined_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
