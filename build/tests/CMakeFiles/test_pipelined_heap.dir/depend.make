# Empty dependencies file for test_pipelined_heap.
# This may be replaced when dependencies are built.
