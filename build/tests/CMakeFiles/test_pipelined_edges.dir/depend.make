# Empty dependencies file for test_pipelined_edges.
# This may be replaced when dependencies are built.
