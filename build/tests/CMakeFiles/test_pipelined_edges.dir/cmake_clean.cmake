file(REMOVE_RECURSE
  "CMakeFiles/test_pipelined_edges.dir/test_pipelined_edges.cpp.o"
  "CMakeFiles/test_pipelined_edges.dir/test_pipelined_edges.cpp.o.d"
  "test_pipelined_edges"
  "test_pipelined_edges.pdb"
  "test_pipelined_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipelined_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
