# Empty compiler generated dependencies file for test_node_fix.
# This may be replaced when dependencies are built.
