file(REMOVE_RECURSE
  "CMakeFiles/test_node_fix.dir/test_node_fix.cpp.o"
  "CMakeFiles/test_node_fix.dir/test_node_fix.cpp.o.d"
  "test_node_fix"
  "test_node_fix.pdb"
  "test_node_fix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_fix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
