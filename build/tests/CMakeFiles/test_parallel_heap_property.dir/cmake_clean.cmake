file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_heap_property.dir/test_parallel_heap_property.cpp.o"
  "CMakeFiles/test_parallel_heap_property.dir/test_parallel_heap_property.cpp.o.d"
  "test_parallel_heap_property"
  "test_parallel_heap_property.pdb"
  "test_parallel_heap_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_heap_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
