file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_heap.dir/test_parallel_heap.cpp.o"
  "CMakeFiles/test_parallel_heap.dir/test_parallel_heap.cpp.o.d"
  "test_parallel_heap"
  "test_parallel_heap.pdb"
  "test_parallel_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
