file(REMOVE_RECURSE
  "CMakeFiles/test_arity.dir/test_arity.cpp.o"
  "CMakeFiles/test_arity.dir/test_arity.cpp.o.d"
  "test_arity"
  "test_arity.pdb"
  "test_arity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
