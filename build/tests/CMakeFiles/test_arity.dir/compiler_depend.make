# Empty compiler generated dependencies file for test_arity.
# This may be replaced when dependencies are built.
