file(REMOVE_RECURSE
  "CMakeFiles/test_stable_heap.dir/test_stable_heap.cpp.o"
  "CMakeFiles/test_stable_heap.dir/test_stable_heap.cpp.o.d"
  "test_stable_heap"
  "test_stable_heap.pdb"
  "test_stable_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stable_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
