file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_heap.dir/test_concurrent_heap.cpp.o"
  "CMakeFiles/test_concurrent_heap.dir/test_concurrent_heap.cpp.o.d"
  "test_concurrent_heap"
  "test_concurrent_heap.pdb"
  "test_concurrent_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
