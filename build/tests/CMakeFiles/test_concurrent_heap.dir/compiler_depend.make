# Empty compiler generated dependencies file for test_concurrent_heap.
# This may be replaced when dependencies are built.
