# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sorted_ops[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_heap[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_heap_property[1]_include.cmake")
include("/root/repo/build/tests/test_pipelined_heap[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_node_fix[1]_include.cmake")
include("/root/repo/build/tests/test_stable_heap[1]_include.cmake")
include("/root/repo/build/tests/test_arity[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent_heap[1]_include.cmake")
include("/root/repo/build/tests/test_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_cross_structure[1]_include.cmake")
include("/root/repo/build/tests/test_window[1]_include.cmake")
include("/root/repo/build/tests/test_pipelined_edges[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
