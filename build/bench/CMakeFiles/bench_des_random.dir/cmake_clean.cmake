file(REMOVE_RECURSE
  "CMakeFiles/bench_des_random.dir/bench_des_random.cpp.o"
  "CMakeFiles/bench_des_random.dir/bench_des_random.cpp.o.d"
  "bench_des_random"
  "bench_des_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
