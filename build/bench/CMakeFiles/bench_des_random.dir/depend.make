# Empty dependencies file for bench_des_random.
# This may be replaced when dependencies are built.
