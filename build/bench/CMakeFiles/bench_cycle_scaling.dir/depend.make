# Empty dependencies file for bench_cycle_scaling.
# This may be replaced when dependencies are built.
