file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_scaling.dir/bench_cycle_scaling.cpp.o"
  "CMakeFiles/bench_cycle_scaling.dir/bench_cycle_scaling.cpp.o.d"
  "bench_cycle_scaling"
  "bench_cycle_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
