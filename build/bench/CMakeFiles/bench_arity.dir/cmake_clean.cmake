file(REMOVE_RECURSE
  "CMakeFiles/bench_arity.dir/bench_arity.cpp.o"
  "CMakeFiles/bench_arity.dir/bench_arity.cpp.o.d"
  "bench_arity"
  "bench_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
