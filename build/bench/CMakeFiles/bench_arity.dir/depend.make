# Empty dependencies file for bench_arity.
# This may be replaced when dependencies are built.
