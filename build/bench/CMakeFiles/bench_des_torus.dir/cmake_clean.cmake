file(REMOVE_RECURSE
  "CMakeFiles/bench_des_torus.dir/bench_des_torus.cpp.o"
  "CMakeFiles/bench_des_torus.dir/bench_des_torus.cpp.o.d"
  "bench_des_torus"
  "bench_des_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
