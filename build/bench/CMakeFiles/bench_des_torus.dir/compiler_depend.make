# Empty compiler generated dependencies file for bench_des_torus.
# This may be replaced when dependencies are built.
