# Empty dependencies file for bench_pipeline_ablation.
# This may be replaced when dependencies are built.
