# Empty dependencies file for bench_node_size.
# This may be replaced when dependencies are built.
