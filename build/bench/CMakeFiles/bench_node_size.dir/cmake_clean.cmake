file(REMOVE_RECURSE
  "CMakeFiles/bench_node_size.dir/bench_node_size.cpp.o"
  "CMakeFiles/bench_node_size.dir/bench_node_size.cpp.o.d"
  "bench_node_size"
  "bench_node_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
