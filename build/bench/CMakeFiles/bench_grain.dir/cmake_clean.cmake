file(REMOVE_RECURSE
  "CMakeFiles/bench_grain.dir/bench_grain.cpp.o"
  "CMakeFiles/bench_grain.dir/bench_grain.cpp.o.d"
  "bench_grain"
  "bench_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
