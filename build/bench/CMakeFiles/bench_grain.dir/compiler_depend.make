# Empty compiler generated dependencies file for bench_grain.
# This may be replaced when dependencies are built.
