# Empty dependencies file for bench_pq_comparison.
# This may be replaced when dependencies are built.
