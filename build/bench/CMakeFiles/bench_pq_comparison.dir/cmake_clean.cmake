file(REMOVE_RECURSE
  "CMakeFiles/bench_pq_comparison.dir/bench_pq_comparison.cpp.o"
  "CMakeFiles/bench_pq_comparison.dir/bench_pq_comparison.cpp.o.d"
  "bench_pq_comparison"
  "bench_pq_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pq_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
