# Empty dependencies file for bench_hold.
# This may be replaced when dependencies are built.
