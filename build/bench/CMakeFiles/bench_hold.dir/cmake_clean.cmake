file(REMOVE_RECURSE
  "CMakeFiles/bench_hold.dir/bench_hold.cpp.o"
  "CMakeFiles/bench_hold.dir/bench_hold.cpp.o.d"
  "bench_hold"
  "bench_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
