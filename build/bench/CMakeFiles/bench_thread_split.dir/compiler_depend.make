# Empty compiler generated dependencies file for bench_thread_split.
# This may be replaced when dependencies are built.
