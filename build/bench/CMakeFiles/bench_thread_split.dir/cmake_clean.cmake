file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_split.dir/bench_thread_split.cpp.o"
  "CMakeFiles/bench_thread_split.dir/bench_thread_split.cpp.o.d"
  "bench_thread_split"
  "bench_thread_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
