// ph_top — live terminal view of a running bench/soak's metrics.
//
// Polls a SnapshotPublisher (either the HTTP endpoint a bench exposes with
// --metrics-port, or the JSON file it writes with --metrics-file) and renders
// per-shard sizes, cycle/route/putback *rates* (computed from successive
// snapshots — the publisher only exports monotone totals), and key phase
// latency percentiles. Zero dependencies: raw POSIX sockets for the GET,
// util/mini_json.hpp for parsing.
//
//   ph_top --port 9137                poll http://127.0.0.1:9137/metrics.json
//   ph_top --file /tmp/ph.json       poll a --metrics-file target
//   ph_top --once ...                 one snapshot, no loop (scripts/tests)
//   ph_top --interval-ms 500 ...      poll cadence (default 1000)
//   ph_top --count N ...              stop after N polls (0 = forever)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/mini_json.hpp"

namespace {

struct Options {
  int port = -1;
  std::string file;
  bool once = false;
  unsigned interval_ms = 1000;
  std::uint64_t count = 0;  ///< 0 = until interrupted
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port N | --file PATH) [--once] [--interval-ms N] "
               "[--count N]\n",
               argv0);
  std::exit(2);
}

/// One HTTP/1.0 GET against the localhost publisher; returns the body ("" on
/// any failure — the caller reports and retries next poll).
std::string http_get_json(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char req[] = "GET /metrics.json HTTP/1.0\r\nConnection: close\r\n\r\n";
  if (::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL) < 0) {
    ::close(fd);
    return "";
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return "";
  return resp.substr(hdr_end + 4);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) return "";
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

double num_or(const ph::minijson::Value& obj, const std::string& key, double dflt) {
  if (!obj.is_object()) return dflt;
  const auto& o = obj.object();
  const auto it = o.find(key);
  if (it == o.end() || !it->second.is_number()) return dflt;
  return it->second.number();
}

struct Prev {
  bool valid = false;
  double t_ns = 0;
  std::map<std::string, double> counters;
};

/// Per-second rate of counter `name` between the previous and current
/// snapshot (0 before two samples exist).
double rate(const Prev& prev, const ph::minijson::Value& counters, double t_ns,
            const std::string& name) {
  if (!prev.valid) return 0.0;
  const double dt = (t_ns - prev.t_ns) / 1e9;
  if (dt <= 0) return 0.0;
  const auto it = prev.counters.find(name);
  if (it == prev.counters.end()) return 0.0;
  return (num_or(counters, name, 0) - it->second) / dt;
}

int render(const std::string& body, Prev& prev) try {
  const ph::minijson::Value doc = ph::minijson::parse(body);
  const double seq = num_or(doc, "seq", 0);
  const double t_ns = num_or(doc, "t_ns", 0);
  const auto& telem = doc.at("telemetry");
  const auto& counters = telem.at("counters");

  std::printf("ph_top  seq=%-6.0f uptime=%8.1fs  cycles/s=%9.1f  routed/s=%11.1f  "
              "putback/s=%9.1f  fsync/s=%7.1f\n",
              seq, t_ns / 1e9, rate(prev, counters, t_ns, "cycles"),
              rate(prev, counters, t_ns, "shard_routed"),
              rate(prev, counters, t_ns, "shard_putbacks"),
              rate(prev, counters, t_ns, "wal_fsyncs"));

  // Per-shard table, assembled from the gauge list ({heap, shard} labels).
  struct ShardRow { double size = -1, active = -1; };
  std::map<std::pair<std::string, std::string>, ShardRow> shardrows;
  std::map<std::string, double> scalars;  ///< label-free-ish heap gauges
  std::map<std::string, double> svc;      ///< svc_* gauges (phd only)
  if (doc.is_object() && doc.object().count("gauges") != 0) {
    for (const auto& g : doc.at("gauges").array()) {
      const std::string name = g.at("name").str();
      const auto& labels = g.at("labels").object();
      const auto heap_it = labels.find("heap");
      const auto shard_it = labels.find("shard");
      const std::string heap =
          heap_it != labels.end() ? heap_it->second.str() : "";
      const double v = g.at("value").number();
      if (shard_it != labels.end()) {
        auto& row = shardrows[{heap, shard_it->second.str()}];
        if (name == "shard_size") row.size = v;
        if (name == "shard_active") row.active = v;
      } else if (name.rfind("svc_", 0) == 0) {
        svc[name] = v;  // scheduler-service plane (absent on older servers)
      } else {
        scalars[name + "{" + heap + "}"] = v;
      }
    }
  }
  if (!shardrows.empty()) {
    std::printf("  %-18s %-6s %12s %s\n", "heap", "shard", "size", "active");
    for (const auto& [key, row] : shardrows) {
      std::printf("  %-18s %-6s %12.0f %s\n", key.first.c_str(),
                  key.second.c_str(), row.size,
                  row.active > 0 ? "yes" : (row.active == 0 ? "QUARANTINED" : "?"));
    }
  }
  // Scheduler-service plane: present only against a phd publisher; a server
  // without svc_* gauges simply renders nothing here.
  if (!svc.empty()) {
    auto sv = [&](const char* n) {
      const auto it = svc.find(n);
      return it != svc.end() ? it->second : 0.0;
    };
    std::printf("  svc   tenants=%-6.0f queue=%-10.0f pending=%-6.0f "
                "shed=%-8.0f dispatch/s=%9.1f ack/s=%9.1f%s%s\n",
                sv("svc_tenants"), sv("svc_queue_depth"),
                sv("svc_pending_delivery"), sv("svc_shed_total"),
                rate(prev, counters, t_ns, "svc_delivered"),
                rate(prev, counters, t_ns, "svc_acked"),
                sv("svc_overloaded") > 0 ? "  [OVERLOADED]" : "",
                sv("svc_draining") > 0 ? "  [DRAINING]" : "");
  }
  for (const auto& [name, v] : scalars) {
    std::printf("  gauge %-38s %14.0f\n", name.c_str(), v);
  }

  // Key phase latencies (present when the publisher's build has telemetry).
  if (telem.is_object() && telem.object().count("phases") != 0) {
    const auto& phases = telem.at("phases").object();
    for (const char* ph_name :
         {"shard_route", "shard_merge", "wal_fsync", "root_work"}) {
      const auto it = phases.find(ph_name);
      if (it == phases.end()) continue;
      const double cnt = num_or(it->second, "count", 0);
      if (cnt == 0) continue;
      std::printf("  phase %-14s count=%10.0f  p50=%9.0fns  p99=%9.0fns\n",
                  ph_name, cnt, num_or(it->second, "p50_ns", 0),
                  num_or(it->second, "p99_ns", 0));
    }
  }
  std::fflush(stdout);

  prev.valid = true;
  prev.t_ns = t_ns;
  prev.counters.clear();
  if (counters.is_object()) {
    for (const auto& [k, v] : counters.object()) {
      if (v.is_number()) prev.counters[k] = v.number();
    }
  }
  return 0;
} catch (const std::exception& e) {
  // Covers both a non-JSON body and a shape mismatch (at() throws): either
  // way this poll is unusable, the next one may not be.
  std::fprintf(stderr, "ph_top: bad snapshot: %s\n", e.what());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ph_top: %s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      opt.port = std::atoi(need("--port"));
    } else if (std::strcmp(argv[i], "--file") == 0) {
      opt.file = need("--file");
    } else if (std::strcmp(argv[i], "--once") == 0) {
      opt.once = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0) {
      opt.interval_ms = static_cast<unsigned>(std::atoi(need("--interval-ms")));
    } else if (std::strcmp(argv[i], "--count") == 0) {
      opt.count = static_cast<std::uint64_t>(std::atoll(need("--count")));
    } else {
      usage(argv[0]);
    }
  }
  if (opt.port < 0 && opt.file.empty()) usage(argv[0]);
  if (opt.once) opt.count = 1;
  if (opt.interval_ms == 0) opt.interval_ms = 1;

  Prev prev;
  int failures = 0;
  for (std::uint64_t polls = 0; opt.count == 0 || polls < opt.count; ++polls) {
    if (polls != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
    const std::string body =
        opt.port >= 0 ? http_get_json(opt.port) : slurp(opt.file);
    if (body.empty()) {
      std::fprintf(stderr, "ph_top: no snapshot from %s (retrying)\n",
                   opt.port >= 0 ? "publisher" : opt.file.c_str());
      if (++failures >= 5 && opt.count != 0) return 1;
      continue;
    }
    failures = 0;
    if (render(body, prev) != 0 && opt.count != 0) return 1;
  }
  return 0;
}
