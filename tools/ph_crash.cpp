// ph_crash — kill-9 crash-recovery sweeps for the durability subsystem.
//
// The fault matrix (ph_stress --failpoint) exercises the persist fail-point
// sites exception-shaped, in-process. This tool exercises them with REAL
// process death: for each (site, seed) it forks a child that installs the
// std::_Exit crash hook, arms the site with a seeded one-shot schedule, and
// runs a deterministic cycle workload against DurableHeap — the child dies
// mid-append / mid-checkpoint / mid-fsync / mid-replay with no destructors
// and no flushes, leaving exactly the torn on-disk state a power cut would.
// The parent then recovers from the directory and differentially checks:
//
//   1. recovery reports op sequence P; the oracle replays the same
//      deterministic ops [1, P] (ops are pure functions of (seed, index),
//      never of heap output, so any P the log proves is replayable),
//   2. ops (P, N] run side by side on the recovered heap and the oracle —
//      every delete-min batch must match bit-exactly,
//   3. both drain to empty on identical streams.
//
// A separate corruption drill bit-flips one byte of the NEWEST checkpoint
// and requires recovery to detect it (CRC), quarantine it aside, fall back
// to the previous checkpoint, and still replay to the exact same state —
// a corrupt frame must never be silently loaded.
//
// --mode=shard-proc switches to the distributed supervisor drills: for each
// (K, seed) a ShardSupervisor runs K real shard child processes and the
// sweep (a) SIGKILLs one child at a seeded op offset, (b) injects
// transport_send faults into the supervisor's frames, and (c) suppresses a
// child's heartbeats until the watchdog convicts it — in every case the
// whole run must stay bit-exact against a fault-free single-process oracle
// while the surviving shards keep cycling (per-shard WAL recovery + journal
// replay + re-admission are what's under test).
//
// Exit code 0 iff every sweep and drill is bit-exact.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/pipelined_heap.hpp"
#include "dist/supervisor.hpp"
#include "obs/flight_recorder.hpp"
#include "persist/recovery.hpp"
#include "robustness/failpoint.hpp"
#include "robustness/watchdog.hpp"
#include "testing/oracle.hpp"

namespace {

using ph::PipelinedParallelHeap;
using ph::persist::DurableHeap;
using ph::persist::DurableOptions;
using ph::persist::FsyncPolicy;
namespace fp = ph::robustness;

using U64 = std::uint64_t;
using DH = DurableHeap<PipelinedParallelHeap<U64>>;

struct Options {
  std::uint64_t seed = 1;
  std::size_t seeds = 8;     // seeds swept per site
  std::size_t ops = 96;      // ops per run
  std::size_t r = 8;         // node capacity
  std::uint64_t key_bound = 1u << 20;
  std::vector<std::string> sites = {"ckpt_write", "wal_append", "wal_fsync",
                                    "recover_replay"};
  std::string mode = "durable";  // or "shard-proc"
  bool verbose = false;
};

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Op {
  std::vector<U64> fresh;
  std::size_t k = 0;
};

// Op i (1-based) is a pure function of (seed, i): replay from any recovered
// prefix never depends on what the heap answered earlier.
Op gen_op(const Options& opt, std::uint64_t seed, std::size_t i) {
  std::uint64_t s = seed ^ (0xd1342543de82ef95ull * (i + 1));
  Op op;
  const std::size_t nfresh = splitmix(s) % (opt.r + 1);
  op.fresh.reserve(nfresh);
  for (std::size_t j = 0; j < nfresh; ++j) {
    op.fresh.push_back(splitmix(s) % opt.key_bound);
  }
  op.k = (i % 3 == 0) ? opt.r : splitmix(s) % (opt.r + 1);
  return op;
}

DurableOptions durable_opts(const std::string& dir, fp::FailSite site) {
  DurableOptions d;
  d.dir = dir;
  switch (site) {
    case fp::FailSite::kCkptWrite:
      d.fsync = FsyncPolicy::kOnCheckpoint;
      d.checkpoint_interval = 5;
      break;
    case fp::FailSite::kWalAppend:
    case fp::FailSite::kWalFsync:
      d.fsync = FsyncPolicy::kEveryRecord;
      d.checkpoint_interval = 7;
      break;
    case fp::FailSite::kRecoverReplay:
    default:
      d.fsync = FsyncPolicy::kNever;
      d.checkpoint_interval = 0;  // everything stays in the WAL tail
      break;
  }
  return d;
}

// Black box first, then die. dump_to_file is noexcept/best-effort, so the
// kill -9 semantics the drill wants (no destructors, no atexit) survive —
// one extra file write is the only difference from a raw _Exit.
[[noreturn]] void crash_hook(fp::FailSite) {
  ph::obs::FlightRecorder::instance().dump_to_file("ph-crash");
  std::_Exit(42);
}

// Child body: run the workload with `site` armed to kill the process.
// _Exit(0) = ran to completion (the seeded offset never fired); _Exit(42)
// = killed at the site; any other status = unexpected error.
[[noreturn]] void child_run(const Options& opt, fp::FailSite site,
                            std::uint64_t seed, const std::string& dir) {
  fp::set_crash_hook(&crash_hook);
  // Crash-time flight dumps land next to the durable files under test, not
  // in whatever cwd the harness launched us from.
  ph::obs::FlightRecorder::instance().set_dump_dir(dir);
  try {
    if (site == fp::FailSite::kRecoverReplay) {
      // Phase A (this child, unarmed): leave a long WAL tail behind.
      DH q(PipelinedParallelHeap<U64>(opt.r), durable_opts(dir, site));
      std::vector<U64> out;
      for (std::size_t i = 1; i <= opt.ops; ++i) {
        const Op op = gen_op(opt, seed, i);
        out.clear();
        q.cycle(op.fresh, op.k, out);
      }
      // Phase B: re-open with the replay site armed — dies mid-recovery,
      // inside this constructor, between two replayed records.
      fp::arm_seeded(site, seed, opt.ops / 2, /*max_fires=*/1);
      DH q2(PipelinedParallelHeap<U64>(opt.r), durable_opts(dir, site));
      std::_Exit(0);
    }
    fp::arm_seeded(site, seed, opt.ops / 2, /*max_fires=*/1);
    DH q(PipelinedParallelHeap<U64>(opt.r), durable_opts(dir, site));
    std::vector<U64> out;
    for (std::size_t i = 1; i <= opt.ops; ++i) {
      const Op op = gen_op(opt, seed, i);
      out.clear();
      q.cycle(op.fresh, op.k, out);
    }
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ph_crash: child: unexpected exception: %s\n", e.what());
    std::_Exit(3);
  } catch (...) {
    std::_Exit(3);
  }
}

// Recovers `dir` in this process and differentially checks the recovered
// heap against an oracle primed with the recovered prefix. Returns true on
// bit-exact agreement through the remaining ops and a full drain.
bool recover_and_check(const Options& opt, fp::FailSite site, std::uint64_t seed,
                       const std::string& dir, std::string& why) {
  DurableOptions d = durable_opts(dir, site);
  DH q(PipelinedParallelHeap<U64>(opt.r), d);
  const std::uint64_t p = q.op_seq();
  if (p > opt.ops) {
    why = "recovered op_seq " + std::to_string(p) + " > ops issued " +
          std::to_string(opt.ops);
    return false;
  }

  ph::testing::SortedOracle oracle;
  std::vector<U64> sink;
  for (std::uint64_t i = 1; i <= p; ++i) {
    const Op op = gen_op(opt, seed, i);
    sink.clear();
    oracle.cycle(op.fresh, op.k, sink);
  }
  if (oracle.size() != q.size()) {
    why = "size after replay: heap " + std::to_string(q.size()) + " vs oracle " +
          std::to_string(oracle.size());
    return false;
  }

  std::vector<U64> got, want;
  for (std::uint64_t i = p + 1; i <= opt.ops; ++i) {
    const Op op = gen_op(opt, seed, i);
    got.clear();
    want.clear();
    q.cycle(op.fresh, op.k, got);
    oracle.cycle(op.fresh, op.k, want);
    if (got != want) {
      why = "delete-min stream diverged at op " + std::to_string(i);
      return false;
    }
  }
  for (int guard = 0; guard < 1 << 15; ++guard) {
    if (q.empty() && oracle.empty()) break;
    got.clear();
    want.clear();
    q.cycle({}, opt.r, got);
    oracle.cycle({}, opt.r, want);
    if (got != want) {
      why = "drain stream diverged";
      return false;
    }
    if (got.empty() && !oracle.empty()) {
      why = "heap drained dry before the oracle";
      return false;
    }
  }
  if (!q.check_invariants(&why)) return false;
  return true;
}

struct TempDir {
  std::string path;
  explicit TempDir(const char* tag) : path(ph::persist::make_temp_dir(tag)) {}
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// One kill-at-site round. Returns true when recovery was bit-exact (or the
// seeded offset fell beyond the run and the child completed — still checked).
bool crash_round(const Options& opt, fp::FailSite site, std::uint64_t seed,
                 bool& killed) {
  TempDir dir("ph-crash");
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("ph_crash: fork");
    return false;
  }
  if (pid == 0) child_run(opt, site, seed, dir.path);

  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    std::perror("ph_crash: waitpid");
    return false;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (code != 0 && code != 42) {
    std::fprintf(stderr, "ph_crash: %s seed %llu: child failed (status %d)\n",
                 fp::fail_site_name(site),
                 static_cast<unsigned long long>(seed), code);
    return false;
  }
  killed = (code == 42);

  std::string why;
  if (!recover_and_check(opt, site, seed, dir.path, why)) {
    std::fprintf(stderr, "ph_crash: %s seed %llu (%s): MISMATCH: %s\n",
                 fp::fail_site_name(site),
                 static_cast<unsigned long long>(seed),
                 killed ? "killed" : "completed", why.c_str());
    return false;
  }
  return true;
}

// Bit-flip drill: corrupt one byte of the newest checkpoint, then require
// detection + fallback to the previous checkpoint + exact replay.
bool corrupt_checkpoint_round(const Options& opt, std::uint64_t seed) {
  TempDir dir("ph-crash-corrupt");
  DurableOptions d;
  d.dir = dir.path;
  d.fsync = FsyncPolicy::kNever;
  d.checkpoint_interval = 5;  // several checkpoints; retention keeps 2

  ph::testing::SortedOracle oracle;
  std::vector<U64> sink;
  {
    DH q(PipelinedParallelHeap<U64>(opt.r), d);
    for (std::size_t i = 1; i <= opt.ops; ++i) {
      const Op op = gen_op(opt, seed, i);
      sink.clear();
      q.cycle(op.fresh, op.k, sink);
      sink.clear();
      oracle.cycle(op.fresh, op.k, sink);
    }
  }  // closed cleanly: newest checkpoint + WAL tail on disk

  auto ckpts = ph::persist::list_checkpoints(dir.path);
  if (ckpts.empty()) {
    std::fprintf(stderr, "ph_crash: corrupt drill: no checkpoints written\n");
    return false;
  }
  const std::string victim = ckpts.back().second;
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff len = f.tellg();
    const std::streamoff at = len / 2;
    f.seekg(at);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(at);
    f.write(&b, 1);
  }

  DH q(PipelinedParallelHeap<U64>(opt.r), d);
  if (q.recovery_info().corrupt_checkpoints == 0) {
    std::fprintf(stderr,
                 "ph_crash: corrupt drill: bit-flipped checkpoint was not "
                 "detected — silently loaded\n");
    return false;
  }
  if (q.op_seq() != opt.ops || q.size() != oracle.size()) {
    std::fprintf(stderr,
                 "ph_crash: corrupt drill: fallback recovery incomplete "
                 "(op_seq %llu/%zu, size %zu vs %zu)\n",
                 static_cast<unsigned long long>(q.op_seq()), opt.ops, q.size(),
                 oracle.size());
    return false;
  }
  std::vector<U64> got, want;
  for (int guard = 0; guard < 1 << 15 && !(q.empty() && oracle.empty()); ++guard) {
    got.clear();
    want.clear();
    q.cycle({}, opt.r, got);
    oracle.cycle({}, opt.r, want);
    if (got != want || (got.empty() && !oracle.empty())) {
      std::fprintf(stderr, "ph_crash: corrupt drill: drain diverged\n");
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// --mode=shard-proc: ShardSupervisor drills with REAL child processes.
// ---------------------------------------------------------------------------

using Sup = ph::dist::ShardSupervisor<U64>;

Sup::Config shard_cfg(const Options& opt, const std::string& dir,
                      std::size_t shards) {
  Sup::Config c;
  c.shards = shards;
  c.node_capacity = opt.r;
  c.dir = dir;
  c.fsync = FsyncPolicy::kNever;  // SIGKILL keeps the page cache: acked == durable
  c.checkpoint_interval = 8;
  c.use_processes = true;
  return c;
}

// Drives the full (seed, ops) stream through the supervisor and a fault-free
// oracle side by side, invoking `hook(i)` before op i, then drains both.
// Any divergence anywhere — including mid-failover — is a failure.
bool drive_shards_exact(Sup& sup, const Options& opt, std::uint64_t seed,
                        const std::function<void(std::size_t)>& hook,
                        std::string& why) {
  ph::testing::SortedOracle oracle;
  std::vector<U64> got, want;
  for (std::size_t i = 1; i <= opt.ops; ++i) {
    if (hook) hook(i);
    const Op op = gen_op(opt, seed, i);
    got.clear();
    want.clear();
    sup.cycle(op.fresh, op.k, got);
    oracle.cycle(op.fresh, op.k, want);
    if (got != want) {
      why = "delete-min stream diverged at op " + std::to_string(i);
      return false;
    }
  }
  for (int guard = 0; guard < 1 << 15; ++guard) {
    if (sup.empty() && oracle.empty()) break;
    got.clear();
    want.clear();
    sup.cycle({}, opt.r, got);
    oracle.cycle({}, opt.r, want);
    if (got != want) {
      why = "drain stream diverged";
      return false;
    }
    if (got.empty() && !oracle.empty()) {
      why = "supervisor drained dry before the oracle";
      return false;
    }
  }
  return sup.check_invariants(&why);
}

// SIGKILL one shard child at a seeded mid-run offset; survivors keep
// cycling, the victim is taken over, its WAL replayed, and a fresh child
// re-admitted — all while the stream stays bit-exact.
bool shard_kill_round(const Options& opt, std::size_t shards,
                      std::uint64_t seed, std::string& why) {
  TempDir dir("ph-crash-shard");
  Sup sup(shard_cfg(opt, dir.path, shards));
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + shards;
  const std::size_t span = std::max<std::size_t>(1, opt.ops / 3);
  const std::size_t kill_at = opt.ops / 3 + splitmix(s) % span;
  const std::size_t victim = seed % shards;
  if (!drive_shards_exact(
          sup, opt, seed,
          [&](std::size_t i) {
            if (i == kill_at) sup.kill_shard(victim);
          },
          why)) {
    return false;
  }
  const Sup::Stats st = sup.stats();
  if (st.deaths == 0) {
    why = "child was SIGKILLed but its death was never reaped";
    return false;
  }
  if (st.takeovers == 0) {
    why = "child died but no in-parent takeover was recorded";
    return false;
  }
  if (st.respawns == 0) {
    why = "victim shard was never re-admitted to a fresh child";
    return false;
  }
  if (sup.backend_state(victim) != Sup::BackendState::kProcess) {
    why = "victim shard did not return to a child process by end of run";
    return false;
  }
  return true;
}

// Seeded transport_send faults in the SUPERVISOR: a frame lost mid-RPC
// forces kill + takeover + journal replay + retry against live children.
bool shard_transport_round(const Options& opt, std::size_t shards,
                           std::uint64_t seed, std::string& why) {
  fp::disarm_all();
  TempDir dir("ph-crash-shard-tr");
  Sup sup(shard_cfg(opt, dir.path, shards));
  // Armed after construction so initial spawn/build frames are clean; fires
  // are spaced far apart (period >> frames per op) so the per-op failover
  // budget is never exhausted by back-to-back injections.
  std::uint64_t s = seed ^ 0xd1342543de82ef95ull;
  fp::arm(fp::FailSite::kTransportSend,
          fp::FireSpec{/*nth=*/4 + static_cast<std::uint32_t>(splitmix(s) % 32),
                       /*period=*/29, /*max_fires=*/4, /*stall_us=*/0});
  const bool exact = drive_shards_exact(sup, opt, seed, nullptr, why);
  const std::uint64_t fires = fp::stats(fp::FailSite::kTransportSend).fires;
  const Sup::Stats st = sup.stats();
  fp::disarm_all();
  if (!exact) return false;
  if (fires == 0) {
    why = "transport_send never fired (seeded schedule missed the run)";
    return false;
  }
  if (st.takeovers == 0) {
    why = "transport faults fired but no takeover was recorded";
    return false;
  }
  return true;
}

// Fake monotonic clock shared by the supervisor and the watchdog so stall
// verdicts and respawn backoff march deterministically per op.
std::atomic<std::uint64_t> g_shard_now{0};
std::uint64_t shard_fake_clock() {
  return g_shard_now.load(std::memory_order_relaxed);
}

// Child-side heartbeat suppression: the child keeps answering RPCs but its
// kBeat frames vanish, so detection must come through the watchdog channel
// (consecutive stall verdicts -> failover) — not the reply path.
bool shard_heartbeat_round(const Options& opt, std::size_t shards,
                           std::uint64_t seed, std::string& why) {
  fp::disarm_all();
  TempDir dir("ph-crash-shard-hb");
  g_shard_now.store(0, std::memory_order_relaxed);
  Sup::Config c = shard_cfg(opt, dir.path, shards);
  c.clock = &shard_fake_clock;
  c.child_faults.push_back(
      {fp::FailSite::kHeartbeatDrop,
       fp::FireSpec{/*nth=*/1, /*period=*/1, /*max_fires=*/40, /*stall_us=*/0}});
  Sup sup(c);
  fp::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 50'000'000;  // ticks are 100 ms: one quiet tick stalls
  wcfg.dump_after_polls = 1u << 30;    // verdicts, not dump files
  wcfg.clock = &shard_fake_clock;
  fp::PhaseWatchdog wd(wcfg);
  sup.attach_watchdog(wd, /*polls_to_failover=*/2);
  const bool exact = drive_shards_exact(
      sup, opt, seed,
      [&](std::size_t) {
        g_shard_now.fetch_add(100'000'000, std::memory_order_relaxed);
        wd.poll();
      },
      why);
  const Sup::Stats st = sup.stats();
  if (!exact) return false;
  if (st.stall_verdicts == 0) {
    why = "dropped heartbeats never escalated to a watchdog stall verdict";
    return false;
  }
  if (st.takeovers == 0) {
    why = "stall verdicts were issued but no takeover followed";
    return false;
  }
  return true;
}

struct ShardSweep {
  const char* name;
  bool (*round)(const Options&, std::size_t, std::uint64_t, std::string&);
  bool needs_failpoints;
};

int run_shard_proc_mode(const Options& opt) {
  static const ShardSweep kSweeps[] = {
      {"shard-kill", &shard_kill_round, false},
      {"shard-transport", &shard_transport_round, true},
      {"shard-heartbeat", &shard_heartbeat_round, true},
  };
  bool ok = true;
  for (const ShardSweep& sw : kSweeps) {
    if (sw.needs_failpoints && !fp::kFailpoints) {
      std::printf("ph_crash: %-16s SKIP (built with PH_FAILPOINTS=OFF)\n",
                  sw.name);
      continue;
    }
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      std::size_t fails = 0;
      for (std::size_t i = 0; i < opt.seeds; ++i) {
        const std::uint64_t seed = opt.seed + i;
        std::string why;
        if (!sw.round(opt, shards, seed, why)) {
          ++fails;
          ok = false;
          std::fprintf(stderr, "ph_crash: %s K=%zu seed %llu: FAIL: %s\n",
                       sw.name, shards, static_cast<unsigned long long>(seed),
                       why.c_str());
        } else if (opt.verbose) {
          std::printf("ph_crash: %-16s K=%zu seed %llu  recovered bit-exact\n",
                      sw.name, shards, static_cast<unsigned long long>(seed));
        }
      }
      std::printf("ph_crash: %-16s K=%zu %s (%zu/%zu rounds)\n", sw.name,
                  shards, fails == 0 ? "OK" : "FAIL", opt.seeds - fails,
                  opt.seeds);
    }
  }
  std::printf("ph_crash: %s\n", ok ? "ALL RECOVERIES BIT-EXACT" : "FAILURES");
  return ok ? 0 : 1;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N     first seed (default 1)\n"
      "  --seeds N    seeds swept per site (default 8)\n"
      "  --ops N      ops per run (default 96)\n"
      "  --r N        node capacity (default 8)\n"
      "  --sites CSV  sites to sweep (default "
      "ckpt_write,wal_append,wal_fsync,recover_replay)\n"
      "  --mode M     durable (default) | shard-proc (multi-process\n"
      "               ShardSupervisor kill/transport/heartbeat drills)\n"
      "  --verbose    per-round lines\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_val;
    bool has_inline = false;
    if (const std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_val = a.substr(eq + 1);
      a.resize(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_val.c_str();
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seeds") {
      opt.seeds = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ops") {
      opt.ops = std::strtoull(next(), nullptr, 10);
    } else if (a == "--r") {
      opt.r = std::strtoull(next(), nullptr, 10);
    } else if (a == "--sites") {
      opt.sites.clear();
      std::string csv = next();
      std::size_t pos = 0;
      while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) opt.sites.push_back(tok);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (a == "--mode") {
      opt.mode = next();
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.mode == "shard-proc") return run_shard_proc_mode(opt);
  if (opt.mode != "durable") {
    std::fprintf(stderr, "ph_crash: unknown mode '%s'\n", opt.mode.c_str());
    return 2;
  }
  if (!fp::kFailpoints) {
    std::fprintf(stderr,
                 "ph_crash: built with PH_FAILPOINTS=OFF; nothing to sweep\n");
    return 0;
  }

  bool ok = true;
  for (const std::string& name : opt.sites) {
    fp::FailSite site;
    if (!fp::fail_site_from_name(name, site)) {
      std::fprintf(stderr, "ph_crash: unknown site '%s'\n", name.c_str());
      return 2;
    }
    std::size_t kills = 0, completes = 0, fails = 0;
    for (std::size_t s = 0; s < opt.seeds; ++s) {
      bool killed = false;
      const std::uint64_t seed = opt.seed + s;
      if (!crash_round(opt, site, seed, killed)) {
        ++fails;
        ok = false;
      } else {
        killed ? ++kills : ++completes;
      }
      if (opt.verbose) {
        std::printf("ph_crash: %-14s seed %llu  %s\n", name.c_str(),
                    static_cast<unsigned long long>(seed),
                    killed ? "killed+recovered" : "completed+reopened");
      }
    }
    std::printf("ph_crash: %-14s %s (%zu killed, %zu completed, %zu failed)\n",
                name.c_str(), fails == 0 ? "OK" : "FAIL", kills, completes,
                fails);
    if (kills == 0 && fails == 0) {
      // A sweep that never kills proves nothing about crash recovery.
      std::printf("ph_crash: %-14s WARN: no seed produced a kill\n",
                  name.c_str());
    }
  }

  std::size_t corrupt_fails = 0;
  for (std::size_t s = 0; s < opt.seeds; ++s) {
    if (!corrupt_checkpoint_round(opt, opt.seed + s)) {
      ++corrupt_fails;
      ok = false;
    }
  }
  std::printf("ph_crash: corrupt_ckpt    %s (%zu/%zu rounds)\n",
              corrupt_fails == 0 ? "OK" : "FAIL", opt.seeds - corrupt_fails,
              opt.seeds);

  std::printf("ph_crash: %s\n", ok ? "ALL RECOVERIES BIT-EXACT" : "FAILURES");
  return ok ? 0 : 1;
}
