// ph_repro — replays a reproducer file written by the stress harness.
//
//   ph_repro <file>                # exit 0 iff the trace passes
//   ph_repro <file> --expect-fail  # exit 0 iff the trace still fails
//                                  # (pin a known-bad trace in CI until fixed)
//
// The file is self-contained (structure name, node capacity, seed, op list;
// see op_trace.hpp), so a failure found by a soak anywhere replays bit-
// identically from the file alone.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "testing/op_trace.hpp"
#include "testing/structures.hpp"

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool expect_fail = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-fail") == 0) {
      expect_fail = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <repro-file> [--expect-fail]\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <repro-file> [--expect-fail]\n", argv[0]);
    return 2;
  }

  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "ph_repro: cannot open %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  ph::testing::OpTrace trace;
  std::string err;
  if (!ph::testing::OpTrace::from_text(buf.str(), trace, &err)) {
    std::fprintf(stderr, "ph_repro: %s: %s\n", path, err.c_str());
    return 2;
  }

  std::printf("ph_repro: %s r=%zu seed=%llu ops=%zu keys=%zu\n",
              trace.structure.c_str(), trace.r,
              static_cast<unsigned long long>(trace.seed), trace.ops.size(),
              trace.total_keys());
  const ph::testing::DiffFailure f = ph::testing::run_trace(trace);
  if (f.failed) {
    std::printf("ph_repro: FAIL at op %zu: %s\n", f.op_index, f.message.c_str());
  } else {
    std::printf("ph_repro: PASS\n");
  }
  if (expect_fail) return f.failed ? 0 : 1;
  return f.failed ? 1 : 0;
}
