// ph_loadgen — open-loop multi-tenant load generator + ledger auditor for phd.
//
// Drives a running phd over one pipelined connection: Zipf-skewed tenant
// choice, burst arrivals, target-rate pacing (send times come from the clock,
// not from replies — open loop, so an overloaded server shows up as shed
// counts and latency, not as a politely slowed client). Interleaves PollDue
// requests so dispatch happens under the same load. Tracks ack latency per
// tenant (log2 histograms; p50/p99), shed counts, and deliveries.
//
//   ph_loadgen --port 9230 --tenants 64 --rate 50000 --seconds 5
//   ph_loadgen --port 9230 --json                              machine-readable
//   ph_loadgen --port 9230 --ledger /tmp/run1.ledger           audit trail
//   ph_loadgen --port 9230 --verify --ledger /tmp/run2.ledger  drain + record
//   ph_loadgen --port 9230 --shutdown                          drain the server
//
// The ledger file is the differential-check artifact the service-smoke CI
// job diffs across a kill -9 (scripts/service_smoke.sh):
//
//   S <tenant> <id> <deadline>   schedule ACKED (durable per fsync policy)
//   C <tenant> <id>              cancel SENT (may or may not have landed)
//   D <tenant> <id>              job delivered by a PollDue reply
//   U <tenant> <id>              schedule sent, no ack observed (the kill
//       raced the commit: delivery in a later phase is optional, not a
//       fabrication)
//   W <outstanding_polls> <max_batch>   written at exit: the at-most-once
//       window — if a poll was in flight when the server died, up to one
//       batch may have committed whose reply was lost.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/frame.hpp"
#include "svc/proto.hpp"

namespace {

using namespace ph;
using svc::SvcMsg;
using svc::SvcType;

struct Options {
  std::uint16_t port = 9230;
  std::size_t tenants = 64;
  double zipf_s = 1.0;          ///< Zipf exponent (0 = uniform)
  double rate = 50000.0;        ///< target schedules/sec
  std::size_t burst = 32;       ///< arrivals per burst (open-loop clumping)
  double seconds = 5.0;
  std::uint64_t max_ops = 0;    ///< 0 = until --seconds
  std::uint64_t delay_min_us = 0, delay_max_us = 50000;  ///< job due delay
  double cancel_frac = 0.0;     ///< cancel this fraction of acked jobs
  std::size_t poll_every = 8;   ///< one PollDue per this many bursts
  std::size_t poll_batch = 256;
  std::uint64_t seed = 1;
  bool json = false;
  bool verify = false;          ///< drain mode: poll until backlog empties
  double verify_timeout_s = 30.0;
  bool shutdown = false;        ///< send kShutdown at the end, wait for ack
  std::string ledger;
};

std::uint64_t mono_ns() {
  ::timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Zipf via inverse-CDF over a precomputed table (fine for <=1e5 tenants).
struct ZipfPicker {
  std::vector<double> cdf;
  void build(std::size_t n, double s) {
    cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf[i] = sum;
    }
    for (double& v : cdf) v /= sum;
  }
  std::uint32_t pick(double u) const {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint32_t>(it - cdf.begin());
  }
};

/// Log2-bucketed latency histogram (ns), enough for p50/p99 on millions of
/// samples without storing them.
struct Histo {
  std::uint64_t buckets[64] = {0};
  std::uint64_t n = 0;
  void add(std::uint64_t ns) {
    int b = 0;
    while (ns > 1 && b < 63) {
      ns >>= 1;
      ++b;
    }
    ++buckets[b];
    ++n;
  }
  /// Upper edge of the bucket holding quantile q — a <=2x overestimate.
  double quantile_us(double q) const {
    if (n == 0) return 0.0;
    std::uint64_t want = static_cast<std::uint64_t>(q * static_cast<double>(n));
    std::uint64_t seen = 0;
    for (int b = 0; b < 64; ++b) {
      seen += buckets[b];
      if (seen > want) return std::ldexp(1.0, b + 1) / 1000.0;
    }
    return 0.0;
  }
};

struct TenantView {
  std::uint64_t sent = 0, acked = 0, shed = 0, delivered = 0, cancels = 0;
  Histo lat;
};

struct Ledger {
  std::vector<std::string> lines;
  void rec(char kind, std::uint32_t t, std::uint64_t id, std::uint64_t extra,
           bool with_extra) {
    char buf[96];
    if (with_extra) {
      std::snprintf(buf, sizeof(buf), "%c %u %llu %llu", kind, t,
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(extra));
    } else {
      std::snprintf(buf, sizeof(buf), "%c %u %llu", kind, t,
                    static_cast<unsigned long long>(id));
    }
    lines.emplace_back(buf);
  }
};

class Client {
 public:
  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool alive() const { return fd_ >= 0 && !dead_; }

  bool send_msg(const SvcMsg& m) {
    if (!alive()) return false;
    svc::encode_svc(m, enc_);
    if (!dist::send_frame_fd(fd_, std::span<const std::uint8_t>(enc_), wire_)) {
      dead_ = true;
      return false;
    }
    return true;
  }

  /// Pulls replies that are already buffered (or blocks up to timeout_ms for
  /// at least one read). Returns false once the connection is dead AND the
  /// parser is empty.
  template <typename Fn>
  bool drain_replies(int timeout_ms, Fn&& on_reply) {
    while (true) {
      SvcMsg m;
      std::vector<std::uint8_t> payload;
      const dist::FrameStatus st = parser_.next(payload);
      if (st == dist::FrameStatus::kBad) {
        dead_ = true;
        return false;
      }
      if (st == dist::FrameStatus::kFrame) {
        if (!svc::decode_svc(payload, m)) {
          dead_ = true;
          return false;
        }
        on_reply(m);
        continue;
      }
      if (dead_) return false;
      ::pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, timeout_ms);
      if (pr <= 0) return true;  // nothing more right now
      std::uint8_t chunk[16384];
      const ::ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) {
        dead_ = true;
        continue;  // flush whatever is parsed, then report dead
      }
      parser_.feed(std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(r)));
      timeout_ms = 0;  // got bytes: only drain what's buffered now
    }
  }

 private:
  int fd_ = -1;
  bool dead_ = false;
  dist::FrameParser parser_;
  std::vector<std::uint8_t> enc_, wire_;
};

struct Run {
  Options opt;
  Client client;
  ZipfPicker zipf;
  std::vector<TenantView> tenants;
  Ledger ledger;
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint64_t>>
      inflight;  ///< id -> (tenant, send_ns)
  std::uint64_t rng;
  std::uint64_t next_id = 1;
  std::uint64_t polls_sent = 0, polls_replied = 0;
  std::uint64_t delivered_total = 0, acked_total = 0, shed_total = 0;
  std::uint64_t overload_replies = 0, errors = 0;
  std::uint64_t last_backlog = 0;

  explicit Run(Options o) : opt(std::move(o)), rng(opt.seed * 2 + 1) {
    zipf.build(opt.tenants, opt.zipf_s);
    tenants.resize(opt.tenants);
  }

  void on_reply(const SvcMsg& m) {
    switch (m.type) {
      case SvcType::kAck: {
        const auto it = inflight.find(m.b);
        if (it != inflight.end()) {
          const auto [t, sent_ns] = it->second;
          inflight.erase(it);
          TenantView& tv = tenants[t % tenants.size()];
          ++tv.acked;
          ++acked_total;
          tv.lat.add(mono_ns() - sent_ns);
          ledger.rec('S', t, m.b, m.a, true);
          maybe_cancel(t, m.a, m.b);
        }
        break;
      }
      case SvcType::kOverloaded: {
        ++overload_replies;
        const auto it = inflight.find(m.b);
        if (it != inflight.end()) {
          ++tenants[it->second.first % tenants.size()].shed;
          ++shed_total;
          inflight.erase(it);
        }
        break;
      }
      case SvcType::kDueReply: {
        ++polls_replied;
        last_backlog = m.b;
        for (const svc::Job& j : m.jobs) {
          ++tenants[j.tenant % tenants.size()].delivered;
          ++delivered_total;
          ledger.rec('D', j.tenant, j.id, 0, false);
        }
        break;
      }
      case SvcType::kStatsReply:
        last_backlog = m.b;
        break;
      case SvcType::kError:
        ++errors;
        break;
      default:
        break;
    }
  }

  void maybe_cancel(std::uint32_t t, std::uint64_t deadline, std::uint64_t id) {
    if (opt.cancel_frac <= 0.0) return;
    const double u =
        static_cast<double>(splitmix(rng) >> 11) / 9007199254740992.0;
    if (u >= opt.cancel_frac) return;
    SvcMsg c;
    c.type = SvcType::kCancel;
    c.tenant = t;
    c.a = deadline;
    c.b = id;
    if (client.send_msg(c)) {
      ++tenants[t % tenants.size()].cancels;
      ledger.rec('C', t, id, 0, false);
    }
  }

  bool send_schedule() {
    const double u =
        static_cast<double>(splitmix(rng) >> 11) / 9007199254740992.0;
    const std::uint32_t t = zipf.pick(u);
    SvcMsg m;
    m.type = SvcType::kSchedule;
    m.tenant = t;
    const std::uint64_t span_us = opt.delay_max_us - opt.delay_min_us + 1;
    m.a = (opt.delay_min_us + splitmix(rng) % span_us) * 1000ull;
    m.b = next_id++;
    m.c = splitmix(rng);
    m.d = 0;
    ++tenants[t].sent;
    inflight.emplace(m.b, std::make_pair(t, mono_ns()));
    return client.send_msg(m);
  }

  bool send_poll() {
    SvcMsg m;
    m.type = SvcType::kPollDue;
    m.a = opt.poll_batch;
    if (!client.send_msg(m)) return false;
    ++polls_sent;
    return true;
  }

  /// The main open-loop phase. Returns false if the server died mid-run.
  bool generate() {
    const std::uint64_t start = mono_ns();
    const std::uint64_t end =
        start + static_cast<std::uint64_t>(opt.seconds * 1e9);
    const double burst_period_ns =
        1e9 * static_cast<double>(opt.burst) / std::max(opt.rate, 1.0);
    double next_send = static_cast<double>(start);
    std::uint64_t ops = 0, bursts = 0;
    while (client.alive()) {
      const std::uint64_t now = mono_ns();
      if (now >= end || (opt.max_ops != 0 && ops >= opt.max_ops)) break;
      if (static_cast<double>(now) >= next_send) {
        for (std::size_t b = 0; b < opt.burst && client.alive(); ++b) {
          if (!send_schedule()) break;
          ++ops;
        }
        next_send += burst_period_ns;
        if (++bursts % std::max<std::size_t>(opt.poll_every, 1) == 0) send_poll();
      }
      const double wait_ms = (next_send - static_cast<double>(mono_ns())) / 1e6;
      client.drain_replies(wait_ms > 1.0 ? static_cast<int>(wait_ms) : 0,
                           [this](const SvcMsg& m) { on_reply(m); });
    }
    // Settle: collect outstanding acks/poll replies (server may be committing).
    const std::uint64_t settle_end = mono_ns() + 2000000000ull;
    while (client.alive() && !inflight.empty() && mono_ns() < settle_end) {
      if (!client.drain_replies(50, [this](const SvcMsg& m) { on_reply(m); })) break;
    }
    return client.alive();
  }

  /// Drain mode: poll until the server reports an empty backlog (everything
  /// scheduled by a previous run gets delivered and recorded).
  bool verify_drain() {
    const std::uint64_t end =
        mono_ns() + static_cast<std::uint64_t>(opt.verify_timeout_s * 1e9);
    last_backlog = 1;
    while (client.alive() && mono_ns() < end) {
      if (!send_poll()) break;
      SvcMsg s;
      s.type = SvcType::kStats;
      client.send_msg(s);
      client.drain_replies(100, [this](const SvcMsg& m) { on_reply(m); });
      if (last_backlog == 0) return true;
      ::usleep(10000);  // jobs may simply not be due yet
    }
    return client.alive() && last_backlog == 0;
  }

  bool shutdown_server() {
    SvcMsg m;
    m.type = SvcType::kShutdown;
    m.a = 1;
    if (!client.send_msg(m)) return false;
    bool acked = false;
    const std::uint64_t end = mono_ns() + 10000000000ull;
    while (client.alive() && !acked && mono_ns() < end) {
      client.drain_replies(100, [&](const SvcMsg& r) {
        if (r.type == SvcType::kAck) acked = true;
        else on_reply(r);
      });
    }
    return acked;
  }

  void write_ledger() {
    if (opt.ledger.empty()) return;
    std::FILE* f = std::fopen(opt.ledger.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ph_loadgen: cannot write %s\n", opt.ledger.c_str());
      return;
    }
    for (const std::string& l : ledger.lines) std::fprintf(f, "%s\n", l.c_str());
    // Sent-but-unacked ops: the ack (or the kill) raced the commit. Such a
    // job MAY be durable — the auditor treats it as "delivery optional".
    for (const auto& [id, ts] : inflight) {
      std::fprintf(f, "U %u %llu\n", ts.first,
                   static_cast<unsigned long long>(id));
    }
    std::fprintf(f, "W %llu %zu\n",
                 static_cast<unsigned long long>(polls_sent - polls_replied),
                 opt.poll_batch);
    std::fclose(f);
  }

  double jain_index() const {
    // Over tenants that sent anything: fairness of delivered counts.
    double sum = 0.0, sumsq = 0.0;
    std::size_t n = 0;
    for (const TenantView& tv : tenants) {
      if (tv.sent == 0) continue;
      const double x = static_cast<double>(tv.delivered);
      sum += x;
      sumsq += x * x;
      ++n;
    }
    if (n == 0 || sumsq == 0.0) return 1.0;
    return (sum * sum) / (static_cast<double>(n) * sumsq);
  }

  void report(double wall_s, bool server_alive) const {
    Histo all;
    std::uint64_t sent = 0;
    for (const TenantView& tv : tenants) {
      sent += tv.sent;
      for (int b = 0; b < 64; ++b) all.buckets[b] += tv.lat.buckets[b];
      all.n += tv.lat.n;
    }
    if (opt.json) {
      std::printf("{\"tool\":\"ph_loadgen\",\"tenants\":%zu,\"zipf_s\":%.2f,"
                  "\"wall_s\":%.3f,\"sent\":%llu,\"acked\":%llu,\"shed\":%llu,"
                  "\"overload_replies\":%llu,\"delivered\":%llu,"
                  "\"polls\":%llu,\"ack_rate_per_s\":%.0f,"
                  "\"ack_p50_us\":%.1f,\"ack_p99_us\":%.1f,"
                  "\"jain_delivered\":%.4f,\"errors\":%llu,"
                  "\"server_alive\":%s}\n",
                  opt.tenants, opt.zipf_s, wall_s,
                  static_cast<unsigned long long>(sent),
                  static_cast<unsigned long long>(acked_total),
                  static_cast<unsigned long long>(shed_total),
                  static_cast<unsigned long long>(overload_replies),
                  static_cast<unsigned long long>(delivered_total),
                  static_cast<unsigned long long>(polls_replied),
                  wall_s > 0 ? static_cast<double>(acked_total) / wall_s : 0.0,
                  all.quantile_us(0.50), all.quantile_us(0.99), jain_index(),
                  static_cast<unsigned long long>(errors),
                  server_alive ? "true" : "false");
      return;
    }
    std::printf("ph_loadgen: %zu tenants (zipf %.2f)  %.2fs wall\n",
                opt.tenants, opt.zipf_s, wall_s);
    std::printf("  sent %llu  acked %llu (%.0f/s)  shed %llu  delivered %llu  "
                "polls %llu\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(acked_total),
                wall_s > 0 ? static_cast<double>(acked_total) / wall_s : 0.0,
                static_cast<unsigned long long>(shed_total),
                static_cast<unsigned long long>(delivered_total),
                static_cast<unsigned long long>(polls_replied));
    std::printf("  ack latency p50 %.1fus  p99 %.1fus   jain(delivered) %.4f%s\n",
                all.quantile_us(0.50), all.quantile_us(0.99), jain_index(),
                server_alive ? "" : "   [server died mid-run]");
    // Top tenants by traffic — the Zipf head, where fairness bites.
    std::printf("  tenant     sent    acked     shed  delivered  p99_us\n");
    for (std::size_t t = 0; t < std::min<std::size_t>(opt.tenants, 8); ++t) {
      const TenantView& tv = tenants[t];
      std::printf("  %6zu %8llu %8llu %8llu %10llu %7.1f\n", t,
                  static_cast<unsigned long long>(tv.sent),
                  static_cast<unsigned long long>(tv.acked),
                  static_cast<unsigned long long>(tv.shed),
                  static_cast<unsigned long long>(tv.delivered),
                  tv.lat.quantile_us(0.99));
    }
  }
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--tenants N] [--zipf S] [--rate R] [--burst N]\n"
      "          [--seconds S] [--ops N] [--delay-max-us N] [--cancel-frac F]\n"
      "          [--poll-every N] [--poll-batch N] [--seed N] [--json]\n"
      "          [--ledger PATH] [--verify] [--shutdown]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--port") opt.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (a == "--tenants") opt.tenants = std::strtoull(next(), nullptr, 10);
    else if (a == "--zipf") opt.zipf_s = std::strtod(next(), nullptr);
    else if (a == "--rate") opt.rate = std::strtod(next(), nullptr);
    else if (a == "--burst") opt.burst = std::strtoull(next(), nullptr, 10);
    else if (a == "--seconds") opt.seconds = std::strtod(next(), nullptr);
    else if (a == "--ops") opt.max_ops = std::strtoull(next(), nullptr, 10);
    else if (a == "--delay-min-us") opt.delay_min_us = std::strtoull(next(), nullptr, 10);
    else if (a == "--delay-max-us") opt.delay_max_us = std::strtoull(next(), nullptr, 10);
    else if (a == "--cancel-frac") opt.cancel_frac = std::strtod(next(), nullptr);
    else if (a == "--poll-every") opt.poll_every = std::strtoull(next(), nullptr, 10);
    else if (a == "--poll-batch") opt.poll_batch = std::strtoull(next(), nullptr, 10);
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--json") opt.json = true;
    else if (a == "--ledger") opt.ledger = next();
    else if (a == "--verify") opt.verify = true;
    else if (a == "--verify-timeout") opt.verify_timeout_s = std::strtod(next(), nullptr);
    else if (a == "--shutdown") opt.shutdown = true;
    else if (a == "--help" || a == "-h") { usage(argv[0]); return 0; }
    else {
      std::fprintf(stderr, "ph_loadgen: unknown flag %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.tenants == 0) opt.tenants = 1;
  if (opt.delay_max_us < opt.delay_min_us) opt.delay_max_us = opt.delay_min_us;

  Run run(opt);
  if (!run.client.connect_to(opt.port)) {
    std::fprintf(stderr, "ph_loadgen: cannot connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(opt.port));
    return 1;
  }

  const std::uint64_t t0 = mono_ns();
  bool ok = true;
  if (opt.verify) {
    ok = run.verify_drain();
    if (!ok) {
      std::fprintf(stderr,
                   "ph_loadgen: verify drain failed (backlog %llu, alive %d)\n",
                   static_cast<unsigned long long>(run.last_backlog),
                   run.client.alive() ? 1 : 0);
    }
  } else if (opt.seconds > 0.0 || opt.max_ops > 0) {
    ok = run.generate();
  }
  if (opt.shutdown && run.client.alive()) {
    if (!run.shutdown_server()) {
      std::fprintf(stderr, "ph_loadgen: shutdown not acked\n");
      ok = false;
    }
  }
  const double wall_s = static_cast<double>(mono_ns() - t0) / 1e9;

  run.write_ledger();
  run.report(wall_s, run.client.alive());
  return ok ? 0 : 1;
}
