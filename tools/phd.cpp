// phd — the parallel-heap scheduler daemon (DESIGN.md §15).
//
// A long-running service: framed Schedule/Cancel/PollDue/Stats requests over
// localhost TCP, executed against DurableHeap<ShardedHeap<Job>> with the
// ingestion tier on the enqueue path. Multi-tenant fair admission, DRR
// dispatch, group-commit acks, WAL-replay recovery. Drive it with ph_loadgen;
// watch it with ph_top against --metrics-port.
//
//   phd --dir /tmp/phd-state --port 9230                the quick start
//   phd --dir d --port 0                                ephemeral port (printed)
//   phd --dir d --port 9230 --metrics-port 9231         + /metrics, /healthz
//   phd --dir d --port 9230 --fsync every               ack = on disk, always
//
// SIGTERM/SIGINT drain gracefully (flush staging, final commit, answer every
// outstanding ack, exit 0). kill -9 is the recovery drill: restart with the
// same --dir and the WAL replays the full ledger bit-exactly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "svc/server.hpp"

namespace {

ph::svc::Server* g_server = nullptr;
void on_term(int) {
  if (g_server != nullptr) g_server->stop();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir PATH [--port N] [--shards N] [--workers N]\n"
      "          [--fsync never|checkpoint|every] [--max-backlog N]\n"
      "          [--overload-watermark N] [--admit-rate JOBS_PER_SEC]\n"
      "          [--burst N] [--max-inflight N] [--metrics-port N]\n"
      "          [--metrics-file PATH] [--no-watchdog]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ph::svc::ServerConfig cfg;
  cfg.core.dir = "";
  cfg.port = 9230;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--dir") {
      cfg.core.dir = next();
    } else if (a == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (a == "--shards") {
      cfg.core.shards = std::strtoull(next(), nullptr, 10);
    } else if (a == "--workers") {
      cfg.core.workers = std::strtoull(next(), nullptr, 10);
    } else if (a == "--node-capacity") {
      cfg.core.node_capacity = std::strtoull(next(), nullptr, 10);
    } else if (a == "--fsync") {
      const std::string v = next();
      if (v == "never") {
        cfg.core.fsync = ph::persist::FsyncPolicy::kNever;
      } else if (v == "checkpoint") {
        cfg.core.fsync = ph::persist::FsyncPolicy::kOnCheckpoint;
      } else if (v == "every") {
        cfg.core.fsync = ph::persist::FsyncPolicy::kEveryRecord;
      } else {
        usage(argv[0]);
        return 2;
      }
    } else if (a == "--max-backlog") {
      cfg.core.max_backlog = std::strtoull(next(), nullptr, 10);
    } else if (a == "--overload-watermark") {
      cfg.core.overload_watermark = std::strtoull(next(), nullptr, 10);
    } else if (a == "--admit-rate") {
      cfg.core.admit_rate = std::strtod(next(), nullptr);
    } else if (a == "--burst") {
      cfg.core.burst = std::strtod(next(), nullptr);
    } else if (a == "--max-inflight") {
      cfg.max_inflight = std::strtoull(next(), nullptr, 10);
    } else if (a == "--metrics-port") {
      cfg.metrics_port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (a == "--metrics-file") {
      cfg.metrics_file = next();
    } else if (a == "--no-watchdog") {
      cfg.watchdog = false;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "phd: unknown flag %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.core.dir.empty()) {
    std::fprintf(stderr, "phd: --dir is required (the WAL home)\n");
    usage(argv[0]);
    return 2;
  }
  std::filesystem::create_directories(cfg.core.dir);

  try {
    ph::svc::Server server(std::move(cfg));
    g_server = &server;
    std::signal(SIGTERM, on_term);
    std::signal(SIGINT, on_term);
    std::signal(SIGPIPE, SIG_IGN);

    const auto& st = server.core().stats();
    std::printf("phd: listening on 127.0.0.1:%u  dir=%s  op_seq=%llu\n",
                static_cast<unsigned>(server.port()),
                server.core().config().dir.c_str(),
                static_cast<unsigned long long>(server.core().durable().op_seq()));
    if (st.recovered_inflight != 0) {
      std::printf("phd: recovery requeued %llu in-flight jobs from an "
                  "unterminated poll transaction\n",
                  static_cast<unsigned long long>(st.recovered_inflight));
    }
    if (server.metrics_port() >= 0) {
      std::printf("phd: metrics on http://127.0.0.1:%d/metrics.json\n",
                  server.metrics_port());
    }
    std::fflush(stdout);

    const std::uint64_t served = server.run();
    const ph::svc::SvcStats fin = server.core().stats();
    std::printf(
        "phd: drained. served=%llu acked=%llu delivered=%llu cancelled=%llu "
        "shed=%llu backlog=%zu op_seq=%llu\n",
        static_cast<unsigned long long>(served),
        static_cast<unsigned long long>(fin.acked),
        static_cast<unsigned long long>(fin.delivered),
        static_cast<unsigned long long>(fin.cancelled),
        static_cast<unsigned long long>(fin.shed), server.core().backlog(),
        static_cast<unsigned long long>(server.core().durable().op_seq()));
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "phd: fatal: %s\n", e.what());
    return 1;
  }
}
