// ph_dist — a live multi-process distributed run you can poke at.
//
// Spawns a ShardSupervisor with K real shard child processes, prints their
// pids, and cycles a seeded workload continuously while mirroring every
// delete-min batch into a fault-free oracle. From another terminal,
// `kill -9` one of the printed pids and watch the supervisor take the shard
// over in-parent, replay its WAL, respawn a fresh child, and re-admit it —
// the tool keeps asserting bit-exactness the whole time and prints every
// death/takeover/respawn transition as it happens.
//
//   ph_dist --shards 4                          live run until Ctrl-C
//   ph_dist --cycles 5000                       bounded run (scripts/CI)
//   ph_dist --metrics-file /tmp/ph.json         then: ph_top --file /tmp/ph.json
//   ph_dist --metrics-port 9137                 then: ph_top --port 9137
//   ph_dist --dir /tmp/ph-dist                  keep WAL/checkpoints around
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dist/supervisor.hpp"
#include "obs/publisher.hpp"
#include "testing/oracle.hpp"

namespace {

using U64 = std::uint64_t;
using Sup = ph::dist::ShardSupervisor<U64>;

struct Options {
  std::size_t shards = 2;
  std::size_t r = 8;
  std::uint64_t seed = 1;
  std::uint64_t cycles = 0;  ///< 0 = run until SIGINT
  unsigned sleep_ms = 10;    ///< pacing between cycles (0 = flat out)
  std::string dir;           ///< empty = fresh temp dir, removed on exit
  std::string metrics_file;
  int metrics_port = -1;
  std::uint64_t key_bound = 1u << 20;
};

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* state_name(Sup::BackendState st) {
  switch (st) {
    case Sup::BackendState::kProcess:
      return "process";
    case Sup::BackendState::kLoopback:
      return "loopback";
    case Sup::BackendState::kTakenOver:
      return "taken-over";
    case Sup::BackendState::kDead:
      return "dead";
  }
  return "?";
}

void print_shards(const Sup& sup) {
  for (std::size_t s = 0; s < sup.shards(); ++s) {
    const ::pid_t pid = sup.shard_pid(s);
    std::printf("ph_dist:   shard %zu  state=%-10s pid=%d  op_seq=%llu\n", s,
                state_name(sup.backend_state(s)), static_cast<int>(pid),
                static_cast<unsigned long long>(sup.shard_op_seq(s)));
  }
  std::fflush(stdout);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--shards K] [--r N] [--seed N] [--cycles N]\n"
               "          [--sleep-ms N] [--dir PATH] [--metrics-file PATH]\n"
               "          [--metrics-port N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_val;
    bool has_inline = false;
    if (const std::size_t eq = a.find('='); eq != std::string::npos) {
      inline_val = a.substr(eq + 1);
      a.resize(eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_val.c_str();
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--shards") {
      opt.shards = std::strtoull(next(), nullptr, 10);
    } else if (a == "--r") {
      opt.r = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--cycles") {
      opt.cycles = std::strtoull(next(), nullptr, 10);
    } else if (a == "--sleep-ms") {
      opt.sleep_ms = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (a == "--dir") {
      opt.dir = next();
    } else if (a == "--metrics-file") {
      opt.metrics_file = next();
    } else if (a == "--metrics-port") {
      opt.metrics_port = std::atoi(next());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.shards == 0) usage(argv[0]);

  const bool temp = opt.dir.empty();
  if (temp) opt.dir = ph::persist::make_temp_dir("ph-dist");

  std::signal(SIGINT, &on_sigint);
  std::signal(SIGTERM, &on_sigint);

  int rc = 0;
  {
    Sup::Config cfg;
    cfg.shards = opt.shards;
    cfg.node_capacity = opt.r;
    cfg.dir = opt.dir;
    cfg.fsync = ph::persist::FsyncPolicy::kNever;
    cfg.checkpoint_interval = 32;
    cfg.use_processes = true;
    Sup sup(cfg);
    sup.register_gauges("dist");

    ph::obs::SnapshotPublisher::Config pcfg;
    pcfg.file_path = opt.metrics_file;
    pcfg.port = opt.metrics_port;
    pcfg.period_ms = 500;
    ph::obs::SnapshotPublisher pub(pcfg);
    if (!opt.metrics_file.empty() || opt.metrics_port >= 0) {
      if (pub.start() && pub.port() >= 0) {
        std::printf("ph_dist: metrics on http://127.0.0.1:%d/metrics.json\n",
                    pub.port());
      }
      if (!opt.metrics_file.empty()) {
        std::printf("ph_dist: metrics file %s\n", opt.metrics_file.c_str());
      }
    }

    std::printf("ph_dist: %zu shard child processes (dir %s)\n", opt.shards,
                opt.dir.c_str());
    std::printf("ph_dist: kill -9 a pid below and watch the failover\n");
    print_shards(sup);

    ph::testing::SortedOracle oracle;
    std::vector<U64> got, want, fresh;
    Sup::Stats last = sup.stats();
    std::uint64_t i = 0;
    bool exact = true;
    while (!g_stop && (opt.cycles == 0 || i < opt.cycles)) {
      ++i;
      std::uint64_t s = opt.seed ^ (0xd1342543de82ef95ull * i);
      fresh.clear();
      const std::size_t nfresh = splitmix(s) % (opt.r + 1);
      for (std::size_t j = 0; j < nfresh; ++j) {
        fresh.push_back(splitmix(s) % opt.key_bound);
      }
      const std::size_t k = splitmix(s) % (opt.r + 1);
      got.clear();
      want.clear();
      sup.cycle(fresh, k, got);
      oracle.cycle(fresh, k, want);
      if (got != want) {
        std::printf("ph_dist: cycle %llu: DIVERGED from oracle — aborting\n",
                    static_cast<unsigned long long>(i));
        exact = false;
        rc = 1;
        break;
      }
      sup.poll();

      const Sup::Stats st = sup.stats();
      if (st.deaths != last.deaths || st.takeovers != last.takeovers ||
          st.respawns != last.respawns ||
          st.stall_verdicts != last.stall_verdicts) {
        std::printf(
            "ph_dist: cycle %llu: deaths=%llu takeovers=%llu respawns=%llu "
            "(stream still exact)\n",
            static_cast<unsigned long long>(i),
            static_cast<unsigned long long>(st.deaths),
            static_cast<unsigned long long>(st.takeovers),
            static_cast<unsigned long long>(st.respawns));
        print_shards(sup);
        last = st;
      } else if (i % 500 == 0) {
        std::printf("ph_dist: cycle %llu  size=%zu  degraded=%d\n",
                    static_cast<unsigned long long>(i), sup.size(),
                    sup.degraded() ? 1 : 0);
        std::fflush(stdout);
      }
      if (opt.sleep_ms != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.sleep_ms));
      }
    }

    if (exact) {
      std::string why;
      if (!sup.check_invariants(&why)) {
        std::printf("ph_dist: invariant violation at shutdown: %s\n",
                    why.c_str());
        rc = 1;
      } else {
        const Sup::Stats st = sup.stats();
        std::printf(
            "ph_dist: done after %llu cycles — exact throughout "
            "(deaths=%llu takeovers=%llu respawns=%llu)\n",
            static_cast<unsigned long long>(i),
            static_cast<unsigned long long>(st.deaths),
            static_cast<unsigned long long>(st.takeovers),
            static_cast<unsigned long long>(st.respawns));
      }
    }
  }

  if (temp) {
    std::error_code ec;
    std::filesystem::remove_all(opt.dir, ec);
  }
  return rc;
}
