// ph_stress — the randomized differential soak, as a CLI.
//
// Sweeps every registered batch-PQ structure (or a named subset) against the
// sorted-multiset oracle over seeded adversarial traces; failing traces are
// minimized and written as reproducer files that ph_repro replays.
//
//   ph_stress                         # default soak, exit 0 iff clean
//   ph_stress --seed 7 --rounds 4     # more seeds per combination
//   ph_stress --budget 60             # stop starting traces after 60s
//   ph_stress --structures pipelined_heap_faulty --must-fail
//                                     # CI detection proof: exit 0 iff the
//                                     # injected fault was caught
//   ph_stress --failpoint             # fault-matrix sweep: fire every
//                                     # registered fail-point site inside a
//                                     # differential drill; exit 0 iff every
//                                     # site fired AND recovered/was detected
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_heap.hpp"
#include "robustness/fault_matrix.hpp"
#include "robustness/watchdog.hpp"
#include "testing/sched_fuzz.hpp"
#include "testing/stress.hpp"
#include "util/rng.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --seed N            master seed (default 1)\n"
               "  --rounds N          seeds per (structure, r, key bound) (default 2)\n"
               "  --cycles N          ops per trace (default 400)\n"
               "  --r LIST            comma-separated node capacities (default 1,2,3,8,32)\n"
               "  --key-bounds LIST   comma-separated key bounds (default 65536,2^40)\n"
               "  --structures LIST   comma-separated structure names (default: all)\n"
               "  --repro-dir DIR     write reproducer files for failures\n"
               "  --budget SECONDS    stop starting new traces after this\n"
               "  --max-failures N    stop the soak after N failures (default 4)\n"
               "  --shrink-attempts N minimizer budget per failure (default 4000)\n"
               "  --no-shrink         keep failing traces unminimized\n"
               "  --sched-fuzz SEED   arm the schedule perturbation hooks (if compiled in)\n"
               "  --sched-fuzz-permille N  per-crossing yield probability, 0..1000 (default 200)\n"
               "  --must-fail         invert the exit code: 0 iff failures were found\n"
               "  --failpoint         run the fault matrix instead of the soak: every\n"
               "                      registered fail-point site is fired inside a\n"
               "                      differential drill (uses --seed/--cycles)\n"
               "  --flightrec-smoke   end-to-end black-box drill: fail-point-induced\n"
               "                      shard quarantine, then a real watchdog stall\n"
               "                      verdict; exit 0 iff the flight dump was written\n"
               "                      (path printed; honors $PH_FLIGHTREC_DIR)\n",
               argv0);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::uint64_t parse_u64(const char* s, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "ph_stress: bad %s '%s'\n", what, s);
    std::exit(2);
  }
  return v;
}

/// --flightrec-smoke: drive the whole black-box chain in one process — a
/// fail-point trips a shard (failpoint_fire + quarantine land in the flight
/// ring), then an unbeaten watchdog channel crosses a real 1ms stall timeout
/// and the rung-2 verdict persists the ring. CI parses the printed dump path.
int run_flightrec_smoke(std::uint64_t seed) {
  namespace rb = ph::robustness;
  if (!rb::kFailpoints) {
    std::fprintf(stderr,
                 "ph_stress: --flightrec-smoke needs the fail-point sites "
                 "(build with -DPH_FAILPOINTS=ON)\n");
    return 2;
  }
  ph::ShardedHeap<std::uint64_t>::Config scfg;
  scfg.shards = 4;
  scfg.quarantine = true;
  ph::ShardedHeap<std::uint64_t> q(8, scfg);
  rb::arm(rb::FailSite::kShardCycle, rb::FireSpec{2, 0, 1, 0});
  ph::Xoshiro256 rng(seed ? seed : 1);
  std::vector<std::uint64_t> sink;
  for (int c = 0; c < 8 && q.sharded_stats().quarantines == 0; ++c) {
    std::vector<std::uint64_t> fresh(24);
    for (auto& v : fresh) v = rng.next_below(1u << 20);
    sink.clear();
    q.cycle(fresh, 8, sink);
  }
  rb::disarm_all();
  if (q.sharded_stats().quarantines == 0) {
    std::fprintf(stderr, "flightrec-smoke: fail-point never tripped a shard\n");
    return 1;
  }

  rb::PhaseWatchdog::Config wcfg;
  wcfg.stall_timeout_ns = 1'000'000;  // 1ms: real clock, bounded wait
  wcfg.dump_after_polls = 1;
  rb::PhaseWatchdog wd(wcfg);
  const std::size_t ch = wd.add_channel("smoke-pipeline");
  wd.beat(ch);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const rb::PhaseWatchdog::PollResult res = wd.poll();
  const std::string path = wd.last_flight_dump();
  if (!res.dumped || path.empty()) {
    std::fprintf(stderr, "flightrec-smoke: stall verdict produced no dump\n");
    return 1;
  }
  std::printf("flightrec-smoke: dump %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ph::testing::StressConfig cfg;
  bool must_fail = false;
  bool failpoint = false;
  bool flightrec_smoke = false;
  bool sched_fuzz = false;
  std::uint64_t sched_fuzz_seed = 0;
  std::uint64_t sched_fuzz_permille = 200;

  // Each argument is split once up front so both `--flag value` and
  // `--flag=value` spell every option.
  const char* inline_val = nullptr;
  auto value = [&](int& i, const char* flag) -> const char* {
    if (inline_val != nullptr) return inline_val;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ph_stress: %s requires an argument\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  std::string flag_buf;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    inline_val = nullptr;
    if (const char* eq = std::strchr(a, '=');
        eq != nullptr && a[0] == '-' && a[1] == '-') {
      flag_buf.assign(a, static_cast<std::size_t>(eq - a));
      a = flag_buf.c_str();
      inline_val = eq + 1;
    }
    if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = parse_u64(value(i, a), "seed");
    } else if (std::strcmp(a, "--rounds") == 0) {
      cfg.rounds = parse_u64(value(i, a), "rounds");
    } else if (std::strcmp(a, "--cycles") == 0) {
      cfg.cycles = parse_u64(value(i, a), "cycles");
    } else if (std::strcmp(a, "--r") == 0) {
      cfg.r_values.clear();
      for (const auto& tok : split_csv(value(i, a))) {
        cfg.r_values.push_back(parse_u64(tok.c_str(), "r"));
      }
    } else if (std::strcmp(a, "--key-bounds") == 0) {
      cfg.key_bounds.clear();
      for (const auto& tok : split_csv(value(i, a))) {
        cfg.key_bounds.push_back(parse_u64(tok.c_str(), "key bound"));
      }
    } else if (std::strcmp(a, "--structures") == 0) {
      cfg.structures = split_csv(value(i, a));
    } else if (std::strcmp(a, "--repro-dir") == 0) {
      cfg.repro_dir = value(i, a);
    } else if (std::strcmp(a, "--budget") == 0) {
      cfg.time_budget_s = std::strtod(value(i, a), nullptr);
    } else if (std::strcmp(a, "--max-failures") == 0) {
      cfg.max_failures = parse_u64(value(i, a), "max failures");
    } else if (std::strcmp(a, "--shrink-attempts") == 0) {
      cfg.shrink_attempts = parse_u64(value(i, a), "shrink attempts");
    } else if (std::strcmp(a, "--no-shrink") == 0) {
      cfg.shrink = false;
    } else if (std::strcmp(a, "--sched-fuzz") == 0) {
      sched_fuzz = true;
      sched_fuzz_seed = parse_u64(value(i, a), "sched fuzz seed");
    } else if (std::strcmp(a, "--sched-fuzz-permille") == 0) {
      sched_fuzz_permille = parse_u64(value(i, a), "sched fuzz permille");
      if (sched_fuzz_permille > 1000) {
        std::fprintf(stderr, "ph_stress: --sched-fuzz-permille must be 0..1000\n");
        return 2;
      }
    } else if (std::strcmp(a, "--must-fail") == 0) {
      must_fail = true;
    } else if (std::strcmp(a, "--failpoint") == 0) {
      failpoint = true;
    } else if (std::strcmp(a, "--flightrec-smoke") == 0) {
      flightrec_smoke = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "ph_stress: unknown option '%s'\n", a);
      usage(argv[0]);
      return 2;
    }
  }

  if (flightrec_smoke) return run_flightrec_smoke(cfg.seed);

  if (failpoint) {
    if (!ph::robustness::kFailpoints) {
      std::fprintf(stderr,
                   "ph_stress: --failpoint requested but the fail-point sites are "
                   "not compiled in (build with -DPH_FAILPOINTS=ON)\n");
      return 2;
    }
    ph::robustness::FaultMatrixConfig fcfg;
    fcfg.seed = cfg.seed;
    if (cfg.cycles != ph::testing::StressConfig{}.cycles) fcfg.cycles = cfg.cycles;
    const ph::robustness::FaultMatrixReport rep =
        ph::robustness::run_fault_matrix(fcfg, &std::cerr);
    std::printf("fault-matrix: %zu sites, %s\n", rep.rows.size(),
                rep.ok() ? "all fired and recovered" : "FAILURES");
    return rep.ok() ? 0 : 1;
  }

  if (sched_fuzz) {
    if (!ph::testing::kSchedFuzz) {
      std::fprintf(stderr,
                   "ph_stress: --sched-fuzz requested but the hooks are not "
                   "compiled in (build with -DPH_SCHED_FUZZ=ON)\n");
      return 2;
    }
    ph::testing::sched_fuzz_enable(sched_fuzz_seed,
                                   static_cast<unsigned>(sched_fuzz_permille));
  }

  const ph::testing::StressReport rep = ph::testing::run_stress(cfg, &std::cerr);

  std::printf("stress: %zu traces (%zu cycles) in %.1fs, %zu skipped, %zu failures\n",
              rep.traces_run, rep.cycles_run, rep.seconds, rep.traces_skipped,
              rep.failures.size());
  for (const auto& f : rep.failures) {
    std::printf("stress: FAIL %s r=%zu seed=%llu op=%zu: %s\n",
                f.trace.structure.c_str(), f.trace.r,
                static_cast<unsigned long long>(f.trace.seed), f.failure.op_index,
                f.failure.message.c_str());
    if (!f.repro_path.empty()) {
      std::printf("stress: repro %s\n", f.repro_path.c_str());
    }
  }
  if (ph::testing::kSchedFuzz && sched_fuzz) {
    std::printf("stress: sched-fuzz perturbations=%llu\n",
                static_cast<unsigned long long>(
                    ph::testing::sched_fuzz_perturbations()));
  }

  if (must_fail) return rep.ok() ? 1 : 0;
  return rep.ok() ? 0 : 1;
}
